"""A minimal discrete-event simulator with message accounting.

Protocol code (node joins, leaves, stabilization, lookups) runs as events on
a virtual clock; every inter-node message is delayed by a pluggable latency
model and counted by type, so tests can verify the paper's O(log n) message
bound for Crescendo joins and experiments can measure protocol traffic.

Observability (:mod:`repro.obs`): a :class:`Simulator` built while a tracer
is active (or given one explicitly) emits one trace event per drained
event, carrying the virtual time; a :class:`MessageLayer` built while a
metrics registry is active mirrors its per-type message counts into
``messages.<kind>`` counters.  With neither attached, the only overhead is
one ``is None`` check per event.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace


class Simulator:
    """Event queue + virtual clock.

    ``tracer`` defaults to the process-wide active tracer (if any) at
    construction time; pass ``tracer=None`` explicitly *after* activating a
    tracer only if you want this simulator silent — construction captures
    the active tracer, so the common case needs no wiring at all.
    """

    def __init__(self, tracer: Optional["obs_trace.Tracer"] = None) -> None:
        self.now = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self.events_run = 0
        self.tracer = tracer if tracer is not None else obs_trace.active_tracer()

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), action))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue (optionally up to virtual time ``until``).

        Returns the number of events executed.  Raises ``RuntimeError`` if
        runnable events remain after ``max_events`` executions — draining
        the queue with *exactly* the budget is not an error.
        """
        executed = 0
        tracer = self.tracer
        while self._queue:
            when, _, action = self._queue[0]
            if until is not None and when > until:
                break
            if executed >= max_events:
                self.events_run += executed
                raise RuntimeError(
                    f"event budget exhausted: {executed} events run, virtual "
                    f"time {self.now:g} reached, {len(self._queue)} still "
                    f"queued: runaway protocol?"
                )
            heapq.heappop(self._queue)
            self.now = when
            action()
            executed += 1
            if tracer is not None:
                tracer.event(
                    "sim.event",
                    t=when,
                    action=getattr(action, "__qualname__", repr(action)),
                )
        self.events_run += executed
        return executed

    @property
    def pending(self) -> int:
        return len(self._queue)


class ConstantLatency:
    """Every message takes the same time (default 1 unit)."""

    def __init__(self, latency: float = 1.0) -> None:
        self.latency = latency

    def __call__(self, src: int, dst: int) -> float:
        return self.latency


@dataclass
class MessageStats:
    """Per-type message counters, resettable between measurement windows.

    ``sink``, when set, is called with each recorded message kind — the
    pluggable hook that mirrors counts into an
    :class:`repro.obs.metrics.MetricsRegistry`
    (see :meth:`~repro.obs.metrics.MetricsRegistry.message_sink`).
    """

    counts: Counter = field(default_factory=Counter)
    sink: Optional[Callable[[str], None]] = None

    def record(self, kind: str) -> None:
        """Count one message of the given type."""
        self.counts[kind] += 1
        if self.sink is not None:
            self.sink(kind)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> Counter:
        """Zero the counters, returning the pre-reset snapshot."""
        snapshot = Counter(self.counts)
        self.counts.clear()
        return snapshot


class MessageLayer:
    """Delivers node-to-node messages through the simulator with latency.

    ``metrics`` defaults to the process-wide active registry (if any) at
    construction time; when present, every sent message also increments the
    registry's ``messages.<kind>`` counter.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_model: Callable[[int, int], float],
        metrics: Optional["obs_metrics.MetricsRegistry"] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency_model
        registry = metrics if metrics is not None else obs_metrics.active_registry()
        self.stats = MessageStats(
            sink=registry.message_sink() if registry is not None else None
        )

    def send(self, src: int, dst: int, kind: str, action: Callable[[], None]) -> None:
        """Send one message; ``action`` runs at the destination on arrival."""
        self.stats.record(kind)
        self.sim.schedule(self.latency(src, dst), action)
