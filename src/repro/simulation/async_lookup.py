"""Asynchronous, in-flight lookups on the virtual clock.

The base protocol evaluates one lookup atomically (RPC-level simulation).
:class:`AsyncEngine` instead advances a lookup one *message* at a time
through the discrete-event simulator: each hop is a scheduled delivery, the
next-hop decision uses the receiving node's state *at delivery time*, and
completions fire callbacks with the virtual-time latency.  Lookups therefore
genuinely interleave with joins, leaves, crashes and stabilization scheduled
on the same clock — the regime where mid-flight failures are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.routing import MAX_HOPS
from ..obs.metrics import record_counter
from .protocol import SimulatedCrescendo


@dataclass
class AsyncResult:
    """Completion record of one asynchronous lookup."""

    key: int
    path: List[int]
    success: bool
    started_at: float
    completed_at: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def duration(self) -> float:
        return self.completed_at - self.started_at


class AsyncEngine:
    """Message-at-a-time lookups over a live :class:`SimulatedCrescendo`."""

    def __init__(self, net: SimulatedCrescendo) -> None:
        self.net = net
        self.completed: List[AsyncResult] = []
        self.in_flight = 0

    def lookup(
        self,
        src: int,
        key: int,
        on_complete: Optional[Callable[[AsyncResult], None]] = None,
    ) -> None:
        """Start a lookup; it progresses via scheduled message deliveries."""
        if src not in self.net.nodes or not self.net.nodes[src].alive:
            raise ValueError(f"source {src} is not a live node")
        self.in_flight += 1
        state = {"path": [src], "started": self.net.sim.now}
        self._step(src, key, state, on_complete)

    def _finish(self, key, state, success, on_complete) -> None:
        result = AsyncResult(
            key=key,
            path=state["path"],
            success=success,
            started_at=state["started"],
            completed_at=self.net.sim.now,
        )
        self.completed.append(result)
        self.in_flight -= 1
        record_counter("async.completed")
        if on_complete is not None:
            on_complete(result)

    def _step(self, cur: int, key: int, state, on_complete) -> None:
        """Decide the next hop *now*, at this node, with its current state."""
        net = self.net
        node = net.nodes.get(cur)
        if node is None or not node.alive:
            # The node died while the message was in flight: lost.
            record_counter("async.lost")
            self._finish(key, state, False, on_complete)
            return
        if len(state["path"]) > MAX_HOPS:
            self._finish(key, state, False, on_complete)
            return
        remaining = net.space.ring_distance(cur, key)
        if remaining == 0:
            self._finish(key, state, True, on_complete)
            return
        best: Optional[int] = None
        best_dist = 0
        for contact in node.routing_contacts():
            peer = net.nodes.get(contact)
            if peer is None or not peer.alive:
                continue
            dist = net.space.ring_distance(cur, contact)
            if 0 < dist <= remaining and dist > best_dist:
                best, best_dist = contact, dist
        if best is None:
            self._finish(
                key, state, net._responsible_live(cur, key), on_complete
            )
            return
        nxt = best

        def deliver() -> None:
            state["path"].append(nxt)
            self._step(nxt, key, state, on_complete)

        net.msgs.send(cur, nxt, "async_lookup", deliver)

    # ------------------------------------------------------------- reporting

    def delivery_rate(self) -> float:
        """Fraction of completed lookups that succeeded.

        ``NaN`` when nothing has completed yet: "no data" must not read
        as a perfect 1.0 delivery rate.
        """
        if not self.completed:
            return float("nan")
        return sum(r.success for r in self.completed) / len(self.completed)

    def mean_duration(self) -> float:
        """Mean virtual-time duration of successful lookups."""
        done = [r.duration for r in self.completed if r.success]
        return sum(done) / len(done) if done else 0.0
