"""Content layered on the dynamic protocol: key handoff and re-replication.

Section 2.3 implies content management during membership change ("m inserts
itself after this predecessor"): when a node joins, it takes over the keys
in its new range from its ring predecessor; when it leaves gracefully it
hands them back; when it crashes, copies held by its ring *predecessors*
(the nodes that inherit its range under the paper's inverted responsibility
rule) keep the data alive, and stabilization re-establishes the replication
degree.

:class:`DataLayer` registers as a listener on a
:class:`~repro.simulation.protocol.SimulatedCrescendo` and maintains, per
stored key: the responsible holder in its storage domain's ring, plus
``replicas - 1`` copies on that ring's predecessors.  Every ownership move
and copy is counted as ``transfer`` / ``replicate`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.hierarchy import DomainPath, ROOT, is_ancestor
from ..core.idspace import predecessor_index
from ..obs.metrics import record_counter
from .protocol import SimulatedCrescendo


@dataclass
class DataItem:
    key: object
    key_hash: int
    value: object
    storage_domain: DomainPath


class DataLayer:
    """Replicated key-value content over a dynamically maintained network."""

    def __init__(self, net: SimulatedCrescendo, replicas: int = 2) -> None:
        if replicas < 1:
            raise ValueError("need at least one copy")
        self.net = net
        self.replicas = replicas
        self.items: Dict[int, DataItem] = {}  # key_hash -> item
        #: key_hash -> current holders (responsible node first).
        self.holders: Dict[int, List[int]] = {}
        net.listeners.append(self)

    # -------------------------------------------------------------- placement

    def _ring_members(self, domain: DomainPath) -> List[int]:
        return sorted(
            n
            for n in self.net.hierarchy.members(domain)
            if self.net.nodes[n].alive
        )

    def _desired_holders(self, item: DataItem) -> List[int]:
        """Responsible node plus ring predecessors in the storage domain."""
        members = self._ring_members(item.storage_domain)
        if not members:
            return []
        start = predecessor_index(members, item.key_hash)
        count = min(self.replicas, len(members))
        return [members[(start - i) % len(members)] for i in range(count)]

    # ------------------------------------------------------------------- API

    def put(
        self,
        origin: int,
        key: object,
        value: object,
        storage_domain: Optional[DomainPath] = None,
    ) -> List[int]:
        """Store a key-value pair; returns its holders (responsible first)."""
        storage_domain = ROOT if storage_domain is None else storage_domain
        origin_path = self.net.hierarchy.path_of(origin)
        if not is_ancestor(storage_domain, origin_path):
            raise ValueError(
                f"storage domain {storage_domain!r} does not contain {origin}"
            )
        key_hash = self.net.space.hash_key(key)
        item = DataItem(key, key_hash, value, storage_domain)
        self.items[key_hash] = item
        holders = self._desired_holders(item)
        self.holders[key_hash] = holders
        # One store message to the responsible node + one per extra replica.
        self.net._count("store", max(1, len(holders)))
        record_counter("storage.puts")
        return holders

    def get(self, origin: int, key: object):
        """Lookup through the live network; replicas mask dead primaries.

        Any holder encountered on the greedy path answers — for a key scoped
        to a domain containing the querier, path convergence guarantees the
        route passes through the domain's responsible node.
        """
        key_hash = self.net.space.hash_key(key)
        route = self.net.lookup(origin, key_hash)
        record_counter("storage.gets")
        item = self.items.get(key_hash)
        if item is None:
            return None, route
        holders = set(self.holders.get(key_hash, []))
        if holders.intersection(route.path):
            return item.value, route
        return None, route

    def value_available(self, key: object) -> bool:
        """Whether at least one live holder still has the value."""
        key_hash = self.net.space.hash_key(key)
        return any(
            holder in self.net.nodes and self.net.nodes[holder].alive
            for holder in self.holders.get(key_hash, [])
        )

    # ------------------------------------------------------------- listeners

    def node_joined(self, node_id: int) -> None:
        """The joiner takes over the keys in its new range (handoff)."""
        self._rebalance()

    def node_leaving(self, node_id: int) -> None:
        """Graceful departure: hand keys to the nodes inheriting the range."""
        for key_hash, holders in self.holders.items():
            if node_id not in holders:
                continue
            item = self.items[key_hash]
            members = [
                m for m in self._ring_members(item.storage_domain) if m != node_id
            ]
            if not members:
                self.holders[key_hash] = []
                continue
            start = predecessor_index(members, item.key_hash)
            desired = [
                members[(start - i) % len(members)]
                for i in range(min(self.replicas, len(members)))
            ]
            for target in desired:
                if target not in holders:
                    self.net._count("transfer")
            self.holders[key_hash] = desired

    def node_crashed(self, node_id: int) -> None:
        """Silent failure: copies on surviving holders keep the data alive;
        re-replication happens at the next stabilization round."""

    def stabilized(self) -> None:
        """Stabilization hook: restore the replication degree everywhere."""
        self._rebalance()

    # -------------------------------------------------------------- internals

    def _rebalance(self) -> None:
        """Move/refresh copies so every key sits on its desired holders.

        A key is only recoverable if at least one current copy survives; a
        key with no live holder is *lost* (tracked, never resurrected).
        """
        for key_hash, item in self.items.items():
            current = [
                h
                for h in self.holders.get(key_hash, [])
                if h in self.net.nodes and self.net.nodes[h].alive
            ]
            if not current:
                self.holders[key_hash] = []
                continue  # lost: all copies crashed before repair
            desired = self._desired_holders(item)
            for target in desired:
                if target not in current:
                    self.net._count("replicate")
            self.holders[key_hash] = desired

    def lost_keys(self) -> List[object]:
        """Keys whose every copy crashed before re-replication."""
        return [
            self.items[kh].key
            for kh, holders in self.holders.items()
            if not holders
        ]
