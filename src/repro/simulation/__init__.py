"""Discrete-event simulation: dynamic maintenance (Section 2.3), churn, and
failure injection / fault-isolation measurements."""

from .async_lookup import AsyncEngine, AsyncResult
from .churn import ChurnConfig, ChurnReport, run_churn
from .data import DataItem, DataLayer
from .events import (
    CalendarQueue,
    ConstantLatency,
    FastSimulator,
    MessageLayer,
    MessageStats,
    Simulator,
)
from .failures import (
    IsolationReport,
    fail_outside_domain,
    fail_random,
    intra_domain_isolation,
    path_stays_inside,
    survival_under_random_failures,
)
from .protocol import ProtocolNode, RingState, SimulatedCrescendo

__all__ = [
    "AsyncEngine",
    "AsyncResult",
    "CalendarQueue",
    "ChurnConfig",
    "ChurnReport",
    "ConstantLatency",
    "DataItem",
    "DataLayer",
    "FastSimulator",
    "IsolationReport",
    "MessageLayer",
    "MessageStats",
    "ProtocolNode",
    "RingState",
    "SimulatedCrescendo",
    "Simulator",
    "fail_outside_domain",
    "fail_random",
    "intra_domain_isolation",
    "path_stays_inside",
    "run_churn",
    "survival_under_random_failures",
]
