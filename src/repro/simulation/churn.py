"""Churn workloads over the dynamic protocol (Section 2.3 in motion).

Drives a :class:`~repro.simulation.protocol.SimulatedCrescendo` with
interleaved joins, graceful leaves, crashes, periodic stabilization and
application lookups on the virtual clock, and reports delivery rates and
protocol traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import DomainPath
from .protocol import SimulatedCrescendo


@dataclass
class ChurnConfig:
    """Event mix for one churn run (counts, not rates: runs are bounded)."""

    joins: int = 50
    leaves: int = 25
    crashes: int = 10
    lookups: int = 200
    #: stabilization rounds interleaved through the run.
    stabilize_rounds: int = 5
    duration: float = 1000.0


@dataclass
class ChurnReport:
    lookups_attempted: int = 0
    lookups_delivered: int = 0
    join_messages: int = 0
    leave_messages: int = 0
    stabilize_messages: int = 0
    lookup_messages: int = 0
    final_population: int = 0
    converged_to_oracle: bool = False

    @property
    def delivery_rate(self) -> float:
        if not self.lookups_attempted:
            return 1.0
        return self.lookups_delivered / self.lookups_attempted


def run_churn(
    net: SimulatedCrescendo,
    rng,
    domain_paths: Sequence[DomainPath],
    config: ChurnConfig = ChurnConfig(),
) -> ChurnReport:
    """Run an interleaved churn schedule; the network must be non-empty.

    Events (joins, leaves, crashes, lookups, stabilize rounds) are shuffled
    onto the virtual clock uniformly over ``config.duration``.  Lookups are
    only counted against nodes alive at lookup time; a lookup is *delivered*
    when it terminates at the live node responsible for the key.
    """
    if not net.nodes:
        raise ValueError("bootstrap the network before running churn")
    report = ChurnReport()

    events: List[Tuple[float, int, str]] = []
    for kind, count in (
        ("join", config.joins),
        ("leave", config.leaves),
        ("crash", config.crashes),
        ("lookup", config.lookups),
    ):
        events.extend((rng.random() * config.duration, i, kind) for i in range(count))
    for i in range(config.stabilize_rounds):
        events.append(((i + 1) * config.duration / (config.stabilize_rounds + 1), i, "stab"))
    events.sort()

    for when, _, kind in events:
        live = [n for n, node in net.nodes.items() if node.alive]
        if kind == "join":
            new_id = net.space.random_id(rng)
            while new_id in net.nodes:
                new_id = net.space.random_id(rng)
            path = domain_paths[rng.randrange(len(domain_paths))]
            report.join_messages += net.join(new_id, path)
        elif kind == "leave" and len(live) > 2:
            report.leave_messages += net.leave(rng.choice(live))
        elif kind == "crash" and len(live) > 2:
            net.crash(rng.choice(live))
        elif kind == "stab":
            report.stabilize_messages += net.stabilize()
        elif kind == "lookup" and len(live) >= 2:
            src = rng.choice(live)
            key = net.space.random_id(rng)
            before = net.msgs.stats.counts["lookup"]
            result = net.lookup(src, key)
            report.lookup_messages += net.msgs.stats.counts["lookup"] - before
            report.lookups_attempted += 1
            report.lookups_delivered += bool(result.success)

    try:
        net.stabilize_to_convergence()
        report.converged_to_oracle = True
    except RuntimeError:
        report.converged_to_oracle = False
    report.final_population = len(net.nodes)
    return report
