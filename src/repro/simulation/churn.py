"""Churn workloads over the dynamic protocol (Section 2.3 in motion).

Drives a :class:`~repro.simulation.protocol.SimulatedCrescendo` with
interleaved joins, graceful leaves, crashes, periodic stabilization and
application lookups on the virtual clock, and reports delivery rates and
protocol traffic.

Two drivers share the event vocabulary: :func:`run_churn` shuffles a
random mix onto the virtual clock, while :func:`run_schedule` replays an
*explicit* :class:`Event` list deterministically — the substrate of the
:mod:`repro.verify` fuzzer, whose failing schedules must replay and
shrink bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import DomainPath, lca as _lca
from .protocol import SimulatedCrescendo


@dataclass
class ChurnConfig:
    """Event mix for one churn run (counts, not rates: runs are bounded)."""

    joins: int = 50
    leaves: int = 25
    crashes: int = 10
    lookups: int = 200
    #: stabilization rounds interleaved through the run.
    stabilize_rounds: int = 5
    duration: float = 1000.0


@dataclass
class ChurnReport:
    lookups_attempted: int = 0
    lookups_delivered: int = 0
    join_messages: int = 0
    leave_messages: int = 0
    stabilize_messages: int = 0
    lookup_messages: int = 0
    final_population: int = 0
    converged_to_oracle: bool = False
    #: Per delivered lookup: end-to-end latency (ms) and the hierarchy
    #: level of the source/terminal lowest common domain.  Populated only
    #: when :func:`run_churn` is given a latency oracle.
    lookup_ms: List[float] = field(default_factory=list)
    lookup_levels: List[int] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        if not self.lookups_attempted:
            return 1.0
        return self.lookups_delivered / self.lookups_attempted

    def latency_quantile(self, q: float) -> float:
        """Quantile of the delivered-lookup latencies (0.0 without data)."""
        from ..obs.quantiles import percentile

        return percentile(sorted(self.lookup_ms), q)

    @property
    def p50_ms(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99_ms(self) -> float:
        return self.latency_quantile(0.99)


def run_churn(
    net: SimulatedCrescendo,
    rng,
    domain_paths: Sequence[DomainPath],
    config: ChurnConfig = ChurnConfig(),
    latency: Optional[Callable[[int, int], float]] = None,
    attach: Optional[Callable[[int], None]] = None,
) -> ChurnReport:
    """Run an interleaved churn schedule; the network must be non-empty.

    Events (joins, leaves, crashes, lookups, stabilize rounds) are shuffled
    onto the virtual clock uniformly over ``config.duration``.  Lookups are
    only counted against nodes alive at lookup time; a lookup is *delivered*
    when it terminates at the live node responsible for the key.

    ``latency`` turns on latency accounting: per delivered lookup, the
    end-to-end milliseconds of its hop path land in
    :attr:`ChurnReport.lookup_ms` (and ``slo.*``-style level tags in
    :attr:`ChurnReport.lookup_levels` — the depth of the source/terminal
    lowest common domain).  Pass a
    :class:`~repro.perf.latency.LatencyTable` to accumulate each path with
    one vectorized gather instead of a Python call per hop, or any
    ``(a, b) -> ms`` callable for the scalar fold — the totals are
    bit-identical either way.  ``attach`` is called with each joining node
    id *before* the join, so a topology latency oracle can attach nodes
    that enter after the initial population.
    """
    if not net.nodes:
        raise ValueError("bootstrap the network before running churn")
    report = ChurnReport()
    path_ms = getattr(latency, "path_ms", None)

    events: List[Tuple[float, int, str]] = []
    for kind, count in (
        ("join", config.joins),
        ("leave", config.leaves),
        ("crash", config.crashes),
        ("lookup", config.lookups),
    ):
        events.extend((rng.random() * config.duration, i, kind) for i in range(count))
    for i in range(config.stabilize_rounds):
        events.append(((i + 1) * config.duration / (config.stabilize_rounds + 1), i, "stab"))
    events.sort()

    for when, _, kind in events:
        live = net.live_view()
        if kind == "join":
            new_id = net.space.random_id(rng)
            while new_id in net.nodes:
                new_id = net.space.random_id(rng)
            path = domain_paths[rng.randrange(len(domain_paths))]
            if attach is not None:
                attach(new_id)
            report.join_messages += net.join(new_id, path)
        elif kind == "leave" and len(live) > 2:
            report.leave_messages += net.leave(rng.choice(live))
        elif kind == "crash" and len(live) > 2:
            net.crash(rng.choice(live))
        elif kind == "stab":
            report.stabilize_messages += net.stabilize()
        elif kind == "lookup" and len(live) >= 2:
            src = rng.choice(live)
            key = net.space.random_id(rng)
            before = net.msgs.stats.counts["lookup"]
            result = net.lookup(src, key)
            report.lookup_messages += net.msgs.stats.counts["lookup"] - before
            report.lookups_attempted += 1
            report.lookups_delivered += bool(result.success)
            if latency is not None and result.success:
                report.lookup_ms.append(
                    path_ms(result.path)
                    if path_ms is not None
                    else result.latency(latency)
                )
                terminal = result.path[-1]
                report.lookup_levels.append(
                    len(_lca(net.nodes[src].path, net.nodes[terminal].path))
                )

    try:
        net.stabilize_to_convergence()
        report.converged_to_oracle = True
    except RuntimeError:
        report.converged_to_oracle = False
    report.final_population = len(net.nodes)
    return report


# ---------------------------------------------------- replayable schedules


@dataclass(frozen=True)
class Event:
    """One deterministic schedule step.

    Replay never draws randomness: joins carry the concrete node id and
    leaf domain; leaves, crashes and lookup sources address a node by
    ``rank`` into the *sorted live id list at execution time*, which stays
    meaningful when a shrinker deletes earlier events.  ``checkpoint``
    marks a quiescent point: the network is stabilized to convergence and
    handed to the caller's callback (the fuzzer runs its invariant
    registry there).
    """

    kind: str  # join | leave | crash | lookup | stabilize | checkpoint | put | get
    #            | kill_domain | partition | heal
    node: Optional[int] = None  # join: the id to add
    #: join: its leaf domain; kill_domain/partition: the domain prefix to
    #: take down (() = everything); heal: revive only this prefix's
    #: suspended nodes (None = all suspended nodes).
    path: Optional[DomainPath] = None
    rank: Optional[int] = None  # leave/crash/lookup/put/get: live-list index
    key: Optional[int] = None  # lookup: the key; put/get: the data key token
    #: put: storage-domain depth — the origin's path truncated to this many
    #: components (0 = global).  Clamped to the origin's actual depth.
    depth: Optional[int] = None

    KINDS = (
        "join", "leave", "crash", "lookup", "stabilize", "checkpoint",
        "put", "get", "kill_domain", "partition", "heal",
    )


@dataclass
class ScheduleReport:
    """Execution counts for one :func:`run_schedule` replay."""

    joins: int = 0
    skipped_joins: int = 0
    leaves: int = 0
    crashes: int = 0
    #: correlated-failure events executed (``kill_domain``) and the nodes
    #: they crashed (the latter are *not* double-counted in ``crashes``).
    domain_kills: int = 0
    killed: int = 0
    #: partition events executed and the nodes they suspended / revived.
    partitions: int = 0
    suspended: int = 0
    heals: int = 0
    revived: int = 0
    lookups_attempted: int = 0
    lookups_delivered: int = 0
    stabilize_rounds: int = 0
    checkpoints: int = 0
    unconverged_checkpoints: int = 0
    final_population: int = 0
    #: Per-lookup (delivered, terminal-node) outcomes in schedule order —
    #: the observable the engine-equivalence oracle compares verbatim.
    lookup_outcomes: List[Tuple[bool, int]] = field(default_factory=list)
    #: Per-lookup hop paths in schedule order: the substrate of the
    #: oracle's latency-equivalence check (identical paths across engines
    #: imply identical latency totals; both are asserted).
    lookup_paths: List[List[int]] = field(default_factory=list)
    #: Data-layer activity (``put`` / ``get`` events; requires a layer).
    puts: int = 0
    data_gets: int = 0
    #: Per-get (key token, value found) outcomes in schedule order.
    data_outcomes: List[Tuple[int, bool]] = field(default_factory=list)


def run_schedule(
    net: SimulatedCrescendo,
    events: Sequence[Event],
    on_checkpoint: Optional[Callable[[SimulatedCrescendo, int, bool], None]] = None,
    min_population: int = 3,
    data=None,
) -> ScheduleReport:
    """Replay an explicit event list; fully deterministic, no RNG.

    Events that cannot execute are skipped rather than failed — a join of
    an existing id, or a leave/crash that would push the live population
    below ``min_population`` — so shrunk sub-schedules always replay.
    The correlated events honour the same floor: ``kill_domain`` and
    ``partition`` take down a domain subtree node by node (sorted id
    order) and stop early rather than drop the live population below
    ``min_population``; ``heal`` revives whatever is suspended under its
    prefix (everything when the prefix is absent).
    ``on_checkpoint(net, index, converged)`` runs after each checkpoint's
    stabilization; ``converged`` is False when
    :meth:`~repro.simulation.protocol.SimulatedCrescendo.stabilize_to_convergence`
    gave up.

    ``data`` attaches a content layer (a
    :class:`~repro.simulation.data.DataLayer` or
    :class:`~repro.perf.storage.FastDataLayer` registered on ``net``):
    ``put`` events store ``k<token>`` from a rank-addressed live origin
    into its path truncated to ``event.depth``, ``get`` events look the
    token up the same way.  Without a layer both kinds are skipped, so
    schedules stay replayable on bare networks.
    """
    if not net.nodes:
        raise ValueError("bootstrap the network before replaying a schedule")
    report = ScheduleReport()
    for event in events:
        live = net.live_view()
        if event.kind == "join":
            if event.node in net.nodes:
                report.skipped_joins += 1
            else:
                net.join(event.node, event.path)
                report.joins += 1
        elif event.kind == "leave":
            if len(live) > min_population:
                net.leave(live[event.rank % len(live)])
                report.leaves += 1
        elif event.kind == "crash":
            if len(live) > min_population:
                net.crash(live[event.rank % len(live)])
                report.crashes += 1
        elif event.kind == "kill_domain":
            # Correlated regional failure: crash every live node under the
            # prefix (sorted id order), stopping at the population floor.
            prefix = event.path or ()
            depth = len(prefix)
            victims = [n for n in live if net.nodes[n].path[:depth] == prefix]
            report.domain_kills += 1
            remaining = len(live)
            for victim in victims:
                if remaining <= min_population:
                    break
                net.crash(victim)
                report.killed += 1
                remaining -= 1
        elif event.kind == "partition":
            # The prefix's subtree goes dark (state retained; see
            # SimulatedCrescendo.suspend): the reachable side routes
            # around it until a later ``heal`` event revives it.
            prefix = event.path or ()
            depth = len(prefix)
            victims = [n for n in live if net.nodes[n].path[:depth] == prefix]
            report.partitions += 1
            remaining = len(live)
            for victim in victims:
                if remaining <= min_population:
                    break
                net.suspend(victim)
                report.suspended += 1
                remaining -= 1
        elif event.kind == "heal":
            # Revive suspended nodes (all of them, or one prefix's worth).
            # Their ring state is stale until stabilization repairs it —
            # deliberately: scheduling (or omitting) the repair is what
            # the partition/rejoin scenarios and their negative controls
            # exercise.
            report.heals += 1
            for node_id in net.suspended_ids():
                if (
                    event.path is None
                    or net.nodes[node_id].path[: len(event.path)] == event.path
                ):
                    net.revive(node_id)
                    report.revived += 1
        elif event.kind == "lookup":
            if len(live) >= 2:
                src = live[event.rank % len(live)]
                result = net.lookup(src, event.key)
                report.lookups_attempted += 1
                report.lookups_delivered += bool(result.success)
                report.lookup_outcomes.append(
                    (bool(result.success), result.path[-1])
                )
                report.lookup_paths.append(list(result.path))
        elif event.kind == "put":
            if data is not None and live:
                origin = live[event.rank % len(live)]
                origin_path = net.hierarchy.path_of(origin)
                depth = min(event.depth or 0, len(origin_path))
                data.put(
                    origin, f"k{event.key}", f"v{event.key}",
                    origin_path[:depth],
                )
                report.puts += 1
        elif event.kind == "get":
            if data is not None and len(live) >= 2:
                origin = live[event.rank % len(live)]
                value, _route = data.get(origin, f"k{event.key}")
                report.data_gets += 1
                report.data_outcomes.append((event.key, value is not None))
        elif event.kind == "stabilize":
            net.stabilize()
            report.stabilize_rounds += 1
        elif event.kind == "checkpoint":
            converged = True
            try:
                net.stabilize_to_convergence()
            except RuntimeError:
                converged = False
                report.unconverged_checkpoints += 1
            if on_checkpoint is not None:
                on_checkpoint(net, report.checkpoints, converged)
            report.checkpoints += 1
        else:
            raise ValueError(f"unknown event kind {event.kind!r}")
    report.final_population = sum(
        1 for node in net.nodes.values() if node.alive
    )
    return report
