"""Failure injection and fault-isolation measurements (Section 2.2).

The *locality of intra-domain paths* property means a route between two
nodes of a domain D never leaves D — so interactions inside D can neither be
interfered with nor affected by failures outside D.  Flat Chord has no such
guarantee: its fingers point anywhere, and killing nodes outside D strands
or degrades intra-D routes.

These helpers kill node sets (whole domains' complements, or random
fractions) and measure routing success and hop inflation for intra-domain
traffic, for any ring-metric network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..core.hierarchy import DomainPath
from ..core.network import DHTNetwork
from ..core.routing import LiveSet, route_ring


def fail_outside_domain(network: DHTNetwork, domain: DomainPath) -> Set[int]:
    """Alive set after killing every node *outside* the given domain.

    Returned as a :class:`~repro.core.routing.LiveSet` so the per-route
    terminal checks reuse one cached sorted view instead of re-sorting.
    """
    return LiveSet(network.hierarchy.members(domain))


def fail_random(network: DHTNetwork, fraction: float, rng) -> Set[int]:
    """Alive set after killing a random fraction of all nodes.

    Returned as a :class:`~repro.core.routing.LiveSet` (see above).
    """
    if not 0 <= fraction < 1:
        raise ValueError("fraction must be in [0, 1)")
    ids = list(network.node_ids)
    dead = set(rng.sample(ids, int(len(ids) * fraction)))
    return LiveSet(set(ids) - dead)


@dataclass
class IsolationReport:
    """Outcome of intra-domain routing under external failures."""

    samples: int
    delivered: int
    avg_hops_before: float
    avg_hops_after: float

    @property
    def success_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0

    @property
    def hop_inflation(self) -> float:
        """Ratio of surviving-route hops to failure-free hops."""
        if not self.avg_hops_before:
            return 1.0
        return self.avg_hops_after / self.avg_hops_before


def intra_domain_isolation(
    network: DHTNetwork,
    domain: DomainPath,
    rng,
    samples: int = 200,
) -> IsolationReport:
    """Route between random same-domain pairs after killing all outsiders.

    For Crescendo the paper's locality property predicts a 100% success rate
    with *identical* hops (the routes never used outside nodes); for flat
    Chord both metrics degrade.
    """
    members = network.hierarchy.members(domain)
    if len(members) < 2:
        raise ValueError(f"domain {domain!r} needs >= 2 members")
    alive = fail_outside_domain(network, domain)
    delivered = 0
    hops_before: List[int] = []
    hops_after: List[int] = []
    for _ in range(samples):
        src, dst = rng.sample(members, 2)
        clean = route_ring(network, src, dst)
        if clean.success:
            hops_before.append(clean.hops)
        failed = route_ring(network, src, dst, alive=alive)
        if failed.success and failed.terminal == dst:
            delivered += 1
            hops_after.append(failed.hops)
    return IsolationReport(
        samples=samples,
        delivered=delivered,
        avg_hops_before=_mean(hops_before),
        avg_hops_after=_mean(hops_after),
    )


def path_stays_inside(network: DHTNetwork, src: int, dst: int) -> bool:
    """Check the locality property for one pair: no hop leaves their LCA domain."""
    lca_path = network.hierarchy.lca_of_nodes(src, dst)
    route = route_ring(network, src, dst)
    hierarchy = network.hierarchy
    return all(
        hierarchy.path_of(node)[: len(lca_path)] == lca_path for node in route.path
    )


def survival_under_random_failures(
    network: DHTNetwork,
    fractions: Sequence[float],
    rng,
    samples: int = 200,
) -> List[float]:
    """Delivery rate between random live pairs at increasing failure levels.

    Static-table resilience (no repair protocol running): measures how much
    slack the link structure itself has.
    """
    rates: List[float] = []
    for fraction in fractions:
        alive = fail_random(network, fraction, rng)
        live = alive.sorted_ids
        if len(live) < 2:
            rates.append(0.0)
            continue
        delivered = 0
        for _ in range(samples):
            src, dst = rng.sample(live, 2)
            result = route_ring(network, src, dst, alive=alive)
            delivered += result.success and result.terminal == dst
        rates.append(delivered / samples)
    return rates


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
