"""Dynamic maintenance for Crescendo (Section 2.3), message by message.

A joining node knows one existing node in its lowest-level domain (or the
deepest of its domains that is populated).  It routes a query for its own ID,
reaching its predecessor at each level of the hierarchy; going from the
lowest-level domain to the top it inserts itself after that predecessor,
builds its links for that ring — using the predecessor's links as hints, so
the total join traffic stays O(log n) — and notifies its successor.  Each
node keeps a successor list (*leaf set*) **per level**; leaf sets are cheap,
are not counted as links, and make the rings robust to departures.

Fidelity note: protocol *logic* for one operation (a join, a leave, one
stabilization round, one lookup) executes atomically at its event time —
an RPC-level simulation.  Every node-to-node message is still individually
counted and the operations themselves interleave on the virtual clock, which
is what the paper's O(log n)-messages-per-join claim and the churn
experiments need.  After membership quiesces, one stabilization round makes
the link tables *exactly* equal to the static oracle construction
(:class:`~repro.dhts.crescendo.CrescendoNetwork`) — the cross-check the test
suite performs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import DomainPath, Hierarchy
from ..core.idspace import IdSpace, predecessor_index
from ..core.routing import MAX_HOPS, LiveSet, Route
from .events import ConstantLatency, MessageLayer, Simulator

DEFAULT_LEAF_SET = 4


@dataclass
class RingState:
    """A node's view of one ring (one level of its domain chain)."""

    predecessor: Optional[int] = None
    successors: List[int] = field(default_factory=list)
    fingers: Set[int] = field(default_factory=set)

    @property
    def successor(self) -> Optional[int]:
        return self.successors[0] if self.successors else None


class ProtocolNode:
    """Protocol state of one live node."""

    def __init__(self, node_id: int, path: DomainPath) -> None:
        self.node_id = node_id
        self.path = path
        self.alive = True
        #: depth -> ring view; depth runs 0 (global) .. len(path) (leaf ring).
        self.rings: Dict[int, RingState] = {
            depth: RingState() for depth in range(len(path) + 1)
        }

    @property
    def leaf_depth(self) -> int:
        return len(self.path)

    def all_links(self) -> Set[int]:
        """Union of fingers across rings (the node's actual out-links)."""
        out: Set[int] = set()
        for ring in self.rings.values():
            out.update(ring.fingers)
        out.discard(self.node_id)
        return out

    def routing_contacts(self) -> Set[int]:
        """Links plus leaf-set entries (used for failure fallback)."""
        out = self.all_links()
        for ring in self.rings.values():
            out.update(ring.successors)
        out.discard(self.node_id)
        return out


class SimulatedCrescendo:
    """A Crescendo network maintained dynamically through protocol messages.

    Subclass hooks: the fast engine
    (:class:`repro.perf.dynamic.FastSimulatedCrescendo`) keeps auxiliary
    sorted-array state in sync by overriding the no-op notification points
    below — :meth:`_membership_added` / :meth:`_membership_crashed` /
    :meth:`_membership_removed` fire on every membership change, and
    :meth:`_touch` fires after every mutation of a node's contact-bearing
    ring state (fingers or leaf sets).  The protocol logic itself never
    branches on the engine.
    """

    #: Which maintenance engine this class implements (see
    #: :mod:`repro.perf.dynamic` for the ``fast`` counterpart).
    engine = "reference"

    def __init__(
        self,
        space: IdSpace,
        sim: Optional[Simulator] = None,
        latency_model=None,
        leaf_set_size: int = DEFAULT_LEAF_SET,
    ) -> None:
        self.space = space
        self.sim = sim if sim is not None else Simulator()
        self.msgs = MessageLayer(self.sim, latency_model or ConstantLatency())
        self.leaf_set_size = leaf_set_size
        self.nodes: Dict[int, ProtocolNode] = {}
        self.hierarchy = Hierarchy()
        #: nodes dark behind a network partition: not alive (the reachable
        #: side routes around them exactly as around crashes) but exempt
        #: from the stabilization purge, so their frozen protocol state
        #: survives until :meth:`revive`.
        self._suspended: Set[int] = set()
        #: observers implementing any of node_joined / node_leaving /
        #: node_crashed / stabilized (see repro.simulation.data.DataLayer).
        self.listeners: List = []
        #: cached sorted live-id view (invalidated on membership changes).
        self._live_cache: Optional[List[int]] = None

    # ----------------------------------------------------- subclass hooks

    def _membership_added(self, node: ProtocolNode) -> None:
        """A node joined (called after ``nodes``/``hierarchy`` updates)."""
        self._live_cache = None

    def _membership_crashed(self, node: ProtocolNode) -> None:
        """A node crashed silently (``alive`` already flipped)."""
        self._live_cache = None

    def _membership_removed(self, node_id: int, path: DomainPath) -> None:
        """A node was forgotten (called after ``nodes``/``hierarchy`` updates)."""
        self._live_cache = None

    def _membership_revived(self, node: ProtocolNode) -> None:
        """A suspended node came back (``alive`` already flipped back)."""
        self._live_cache = None

    def _touch(self, node_id: int) -> None:
        """A node's ring state changed (cache-invalidation point).

        Fired after every mutation of a node's fingers, leaf sets or
        predecessor pointer, so a subclass tracking read-dependencies sees
        every write that could change another node's maintenance outcome.
        """

    def _observe_live(self, node_id: Optional[int]) -> bool:
        """Is ``node_id`` a live node?

        All aliveness reads inside the maintenance path go through this
        hook so a subclass can record which nodes an execution depended
        on (the fast engine's memoization needs the exact read set).
        """
        if node_id is None:
            return False
        peer = self.nodes.get(node_id)
        return peer is not None and peer.alive

    # ------------------------------------------------------------ live views

    def live_view(self) -> Sequence[int]:
        """Sorted ids of the live nodes — cached, invalidated on membership
        changes, so repeated oracle/convergence checks between churn events
        never re-sort the full membership.  Read-only: the returned sequence
        is only valid until the next join/leave/crash/purge.
        """
        if self._live_cache is None:
            self._live_cache = sorted(
                n for n, node in self.nodes.items() if node.alive
            )
        return self._live_cache

    def live_set(self) -> LiveSet:
        """The live membership as a :class:`~repro.core.routing.LiveSet`.

        The set is built from the cached sorted view, and its own
        ``sorted_ids`` cache is pre-seeded — handing it to the routing
        engines or failure studies costs no extra sort.
        """
        view = self.live_view()
        out = LiveSet(view)
        object.__setattr__(out, "_sorted", list(view))
        return out

    # --------------------------------------------------------------- helpers

    def _ordered_leafset(self, node_id: int, entries: List[int]) -> List[int]:
        """A leaf set: distinct live entries sorted by clockwise distance.

        Keeping leaf sets distance-ordered means the head is always the
        believed immediate successor, so a mis-informed joiner can never
        displace a closer, correct entry.
        """
        cleaned = _dedup(entries, node_id)
        cleaned.sort(key=lambda x: self.space.ring_distance(node_id, x))
        return cleaned[: self.leaf_set_size]

    def _count(self, kind: str, hops: int = 1) -> None:
        self.msgs.stats.record_many(kind, hops)

    def _in_ring(self, node: ProtocolNode, prefix: DomainPath) -> bool:
        return node.path[: len(prefix)] == prefix

    def _gap(self, node: ProtocolNode, depth: int) -> int:
        """Distance to the node's own-ring successor one level *below* ``depth``.

        This is Canon condition (b)'s bound for the merge links of ring
        ``depth``; the leaf ring has no lower ring, so the gap is unbounded.
        """
        if depth >= node.leaf_depth:
            return self.space.size
        lower = node.rings[depth + 1].successor
        if lower is None or lower == node.node_id:
            return self.space.size
        return self.space.ring_distance(node.node_id, lower)

    # ---------------------------------------------------- membership queries

    def _ring_has_live_peer(self, prefix: DomainPath, exclude: int) -> bool:
        """Whether the ring at ``prefix`` holds a live node besides ``exclude``."""
        return any(
            n != exclude and self.nodes[n].alive
            for n in self.hierarchy.members(prefix)
        )

    def _first_live_member(
        self, prefix: DomainPath, exclude: Optional[int] = None
    ) -> Optional[int]:
        """First live member of ``prefix`` in insertion order, or ``None``.

        Insertion order matters: this models the per-domain bootstrap
        directory, whose answer must not depend on the engine in use.
        """
        for n in self.hierarchy.members(prefix):
            if n != exclude and self.nodes[n].alive:
                return n
        return None

    def _nearest_live_peer(self, prefix: DomainPath, node_id: int) -> int:
        """The live ring member (other than ``node_id``) closest clockwise."""
        return min(
            (
                n
                for n in self.hierarchy.members(prefix)
                if n != node_id and self.nodes[n].alive
            ),
            key=lambda m: self.space.ring_distance(node_id, m),
        )

    # ------------------------------------------------------------ navigation

    def _ring_contacts(self, node: ProtocolNode, depth: int) -> Set[int]:
        """Contacts of ``node`` known to lie within its depth-``depth`` ring."""
        out: Set[int] = set()
        for d in range(depth, node.leaf_depth + 1):
            ring = node.rings.get(d)
            if ring:
                out.update(ring.fingers)
                out.update(ring.successors)
        out.discard(node.node_id)
        return out

    def _find_predecessor(
        self,
        prefix: DomainPath,
        key: int,
        start: int,
        kind: str,
        exclude: Optional[int] = None,
    ) -> int:
        """Greedy clockwise walk within a ring to the predecessor of ``key``.

        Each hop is one message of type ``kind``.  ``exclude`` skips one node
        — a joining node looking up its own identifier must not terminate on
        itself.
        """
        depth = len(prefix)
        cur = self.nodes[start]
        for _ in range(MAX_HOPS):
            remaining = self.space.ring_distance(cur.node_id, key)
            best: Optional[int] = None
            best_dist = 0
            for contact in self._ring_contacts(cur, depth):
                if contact == exclude:
                    continue
                peer = self.nodes.get(contact)
                if peer is None or not peer.alive:
                    continue
                dist = self.space.ring_distance(cur.node_id, contact)
                if 0 < dist <= remaining and dist > best_dist:
                    best, best_dist = contact, dist
            if best is None:
                return cur.node_id
            self._count(kind)
            cur = self.nodes[best]
        raise RuntimeError("ring walk exceeded hop bound")

    def _find_successor_from(
        self,
        prefix: DomainPath,
        target: int,
        hint: int,
        kind: str,
        exclude: Optional[int] = None,
    ) -> int:
        """Successor of ``target`` in a ring, walking from a hint node."""
        pred = self._find_predecessor(prefix, target, hint, kind, exclude)
        node = self.nodes[pred]
        depth = len(prefix)
        if self.space.ring_distance(pred, target) == 0:
            return pred
        succ = node.rings[depth].successor
        return succ if succ is not None else pred

    # ----------------------------------------------------------------- joins

    def bootstrap_node(self, node_id: int, path: DomainPath) -> ProtocolNode:
        """Create the very first node of the system."""
        if self.nodes:
            raise RuntimeError("network already bootstrapped; use join()")
        node = ProtocolNode(self.space.validate(node_id), path)
        self.nodes[node_id] = node
        self.hierarchy.place(node_id, path)
        self._membership_added(node)
        return node

    def pick_bootstrap(self, path: DomainPath) -> int:
        """An existing node from the deepest populated domain of ``path``.

        Models the paper's bootstrap directory (a per-domain server, the
        DNS server, or the DHT itself).
        """
        for depth in range(len(path), -1, -1):
            member = self._first_live_member(path[:depth])
            if member is not None:
                return member
        raise RuntimeError("no live node to bootstrap from")

    def join(
        self, node_id: int, path: DomainPath, bootstrap_id: Optional[int] = None
    ) -> int:
        """Join a new node; returns the number of protocol messages used."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already present")
        if not self.nodes:
            self.bootstrap_node(node_id, path)
            return 0
        before = self.msgs.stats.total
        bootstrap = (
            bootstrap_id if bootstrap_id is not None else self.pick_bootstrap(path)
        )
        node = ProtocolNode(self.space.validate(node_id), path)
        self.nodes[node_id] = node
        self.hierarchy.place(node_id, path)
        self._membership_added(node)

        # Insert bottom-up: predecessor lookup, splice, fingers, per level.
        contact = bootstrap
        for depth in range(node.leaf_depth, -1, -1):
            prefix = path[:depth]
            if not self._ring_has_live_peer(prefix, node_id):
                node.rings[depth] = RingState(None, [], set())
                self._touch(node_id)
                continue
            if not self._in_ring(self.nodes[contact], prefix):
                contact = self.pick_bootstrap(prefix)
            pred_id = self._find_predecessor(
                prefix, node_id, contact, "join_lookup", exclude=node_id
            )
            self._splice_in(node, depth, pred_id)
            self._build_fingers(node, depth, pred_id, "join_finger")
            contact = pred_id
        for listener in self.listeners:
            if hasattr(listener, "node_joined"):
                listener.node_joined(node_id)
        self.msgs.stats.flush()
        return self.msgs.stats.total - before

    def _splice_in(self, node: ProtocolNode, depth: int, pred_id: int) -> None:
        """Insert ``node`` after its ring predecessor and notify both sides."""
        pred = self.nodes[pred_id]
        ring = pred.rings[depth]
        succ_id = ring.successor if ring.successor is not None else pred_id
        node.rings[depth].predecessor = pred_id
        succ_list = [succ_id] + self.nodes[succ_id].rings[depth].successors
        node.rings[depth].successors = self._ordered_leafset(node.node_id, succ_list)
        ring.successors = self._ordered_leafset(
            pred_id, [node.node_id] + ring.successors
        )
        self.nodes[succ_id].rings[depth].predecessor = node.node_id
        self._touch(node.node_id)
        self._touch(pred_id)
        self._touch(succ_id)
        self._count("notify", 2)  # inform predecessor and successor

    def _finger_hints(
        self, node: ProtocolNode, pred_id: int, depth: int
    ) -> List[int]:
        """Sorted walk-start hints for :meth:`_build_fingers`: the
        predecessor plus its ring contacts, minus the joining node."""
        pred = self.nodes[pred_id]
        return sorted(
            {pred_id}
            | {
                contact
                for contact in self._ring_contacts(pred, depth)
                if contact != node.node_id
            }
        )

    def _build_fingers(
        self, node: ProtocolNode, depth: int, pred_id: int, kind: str
    ) -> None:
        """Create the node's ring-``depth`` links (hinted by the predecessor).

        At the node's leaf ring these are full Chord fingers; at merge rings
        only union fingers strictly inside the own-ring gap survive —
        conditions (a) and (b) of the Canon merge.
        """
        self._count("fetch_hints")  # copy the predecessor's link list
        prefix = node.path[:depth]
        gap = self._gap(node, depth)
        fingers: Set[int] = set()
        # The predecessor is ring-adjacent, so its finger table is within a
        # step or two of ours: start every search from the best hint instead
        # of walking from scratch (this is what keeps joins at O(log n)
        # messages).
        hints = self._finger_hints(node, pred_id, depth)
        last_succ: Optional[int] = None
        for k in range(self.space.bits):
            step = 1 << k
            if step >= gap:
                break
            # The previous finger already covers this octave: no probe needed
            # (this is what makes the number of *messages* O(log n) even
            # though N octaves are considered).
            if (
                last_succ is not None
                and self.space.ring_distance(node.node_id, last_succ) >= step
            ):
                continue
            target = self.space.add(node.node_id, step)
            start = hints[predecessor_index(hints, target)]
            # No exclusion here: the node itself may be the target's ring
            # predecessor (its splice is already done), and its successor
            # pointer is then exactly the finger we need.
            succ = self._find_successor_from(prefix, target, start, kind)
            if succ == node.node_id:
                continue
            dist = self.space.ring_distance(node.node_id, succ)
            if step <= dist < gap:
                fingers.add(succ)
                last_succ = succ
                if succ not in hints:
                    bisect.insort(hints, succ)
        if fingers != node.rings[depth].fingers:
            node.rings[depth].fingers = fingers
            self._touch(node.node_id)

    # ------------------------------------------------------------ departures

    def leave(self, node_id: int) -> int:
        """Graceful departure: notify neighbors at every level."""
        node = self.nodes[node_id]
        before = self.msgs.stats.total
        for listener in self.listeners:
            if hasattr(listener, "node_leaving"):
                listener.node_leaving(node_id)
        for depth, ring in node.rings.items():
            pred_id = ring.predecessor
            succ_id = ring.successor
            if pred_id is not None and pred_id in self.nodes and pred_id != node_id:
                pred_ring = self.nodes[pred_id].rings[depth]
                pred_ring.successors = _dedup(
                    [s for s in [succ_id] + ring.successors if s is not None]
                    + pred_ring.successors,
                    pred_id,
                )
                pred_ring.successors = [
                    s for s in pred_ring.successors if s != node_id
                ][: self.leaf_set_size]
                self._touch(pred_id)
                self._count("leave_notify")
            if succ_id is not None and succ_id in self.nodes and succ_id != node_id:
                self.nodes[succ_id].rings[depth].predecessor = pred_id
                self._touch(succ_id)
                self._count("leave_notify")
        self._forget(node_id)
        self.msgs.stats.flush()
        return self.msgs.stats.total - before

    def crash(self, node_id: int) -> None:
        """Silent failure: no notifications; repair happens via leaf sets."""
        node = self.nodes[node_id]
        node.alive = False
        self._membership_crashed(node)
        for listener in self.listeners:
            if hasattr(listener, "node_crashed"):
                listener.node_crashed(node_id)

    # ----------------------------------------------------------- partitions

    def suspend(self, node_id: int) -> None:
        """Cut a node off behind a partition (dark, but state retained).

        From the reachable side this is indistinguishable from a crash —
        the node stops answering, lookups route around it, stabilization
        repairs leaf sets past it — except that its frozen protocol state
        is *not* purged, mirroring a real partition where the far side
        keeps its tables.  :meth:`revive` flips it back; repairing the now
        stale state is the caller's business (stabilize rounds), which is
        exactly the partition/rejoin hazard the scenario oracles probe.
        No protocol messages are exchanged (the cut is silent).
        """
        node = self.nodes[node_id]
        if not node.alive:
            raise ValueError(f"node {node_id} is not alive (cannot suspend)")
        node.alive = False
        self._suspended.add(node_id)
        self._membership_crashed(node)

    def revive(self, node_id: int) -> None:
        """Bring a suspended node back with its (stale) protocol state."""
        if node_id not in self._suspended:
            raise ValueError(f"node {node_id} is not suspended")
        self._suspended.discard(node_id)
        node = self.nodes[node_id]
        node.alive = True
        self._membership_revived(node)

    def suspended_ids(self) -> List[int]:
        """Sorted ids of the nodes currently dark behind a partition."""
        return sorted(self._suspended)

    def _forget(self, node_id: int) -> None:
        path = self.nodes[node_id].path
        self._suspended.discard(node_id)
        del self.nodes[node_id]
        self.hierarchy.remove(node_id)
        self._membership_removed(node_id, path)
        self._touch(node_id)
        for other in self.nodes.values():
            changed = False
            for ring in other.rings.values():
                if node_id in ring.fingers:
                    ring.fingers.discard(node_id)
                    changed = True
                if node_id in ring.successors:
                    # Leaf sets are deduplicated, so one removal suffices.
                    ring.successors.remove(node_id)
                    changed = True
                if ring.predecessor == node_id:
                    ring.predecessor = None
                    changed = True
            if changed:
                self._touch(other.node_id)

    # ---------------------------------------------------------- maintenance

    def stabilize(self) -> int:
        """One global stabilization round; returns messages used.

        Each live node, at each of its levels: repairs its successor list
        from the first live entry (dropping crashed nodes), re-adopts its
        successor's predecessor pointer, and refreshes its fingers — which
        also *drops* merge links invalidated by a shrunken own-ring gap.
        """
        before = self.msgs.stats.total
        for node in list(self.nodes.values()):
            if not node.alive:
                continue
            for depth in range(node.leaf_depth, -1, -1):
                self._stabilize_ring(node, depth)
        # Purge crashed nodes whose state no-one references any more.
        # Suspended nodes are exempt: they are dark, not gone, and must
        # come back with their state when the partition heals.
        for dead in [
            n
            for n, node in self.nodes.items()
            if not node.alive and n not in self._suspended
        ]:
            self._forget(dead)
        for listener in self.listeners:
            if hasattr(listener, "stabilized"):
                listener.stabilized()
        self.msgs.stats.flush()
        return self.msgs.stats.total - before

    def _stabilize_ring(self, node: ProtocolNode, depth: int) -> None:
        prefix = node.path[:depth]
        ring = node.rings[depth]
        live_succ = None
        for cand in ring.successors:
            self._count("ping")
            if self._observe_live(cand):
                live_succ = cand
                break
        if not self._ring_has_live_peer(prefix, node.node_id):
            # Reset only if there is state to reset: a ring that is already
            # empty stays untouched, so quiescent rounds perform no writes.
            if ring.predecessor is not None or ring.successors or ring.fingers:
                node.rings[depth] = RingState(None, [], set())
                self._touch(node.node_id)
            return
        if live_succ is None:
            # Leaf set exhausted (catastrophic local failure): locate our
            # ring predecessor through a live contact and read the successor
            # out of *its* leaf set (its head entry is ourselves).
            probe = self._find_predecessor(
                prefix,
                self.space.add(node.node_id, 1),
                self._first_live_member(prefix, exclude=node.node_id),
                "repair_lookup",
                exclude=node.node_id,
            )
            probe_ring = self.nodes[probe].rings[depth]
            for cand in probe_ring.successors:
                peer = self.nodes.get(cand)
                if cand != node.node_id and peer is not None and peer.alive:
                    live_succ = cand
                    break
            if live_succ is None:
                # Last resort: consult the bootstrap directory (the same
                # per-domain membership service new joiners use).
                live_succ = self._nearest_live_peer(prefix, node.node_id)
            self._count("repair_lookup")
        # Chord's stabilize step: if our successor's predecessor lies between
        # us and it, that node is our true successor — adopt it.
        succ_ring = self.nodes[live_succ].rings[depth]
        between = succ_ring.predecessor
        if (
            between is not None
            and between != node.node_id
            and self._observe_live(between)
            and self.space.ring_distance(node.node_id, between)
            < self.space.ring_distance(node.node_id, live_succ)
        ):
            live_succ = between
            succ_ring = self.nodes[live_succ].rings[depth]
            self._count("notify")
        # Verification walk: a node that mis-spliced during instability is
        # internally consistent with its (equally wrong) neighbors, so also
        # ask the ring itself — walk from our believed predecessor to the
        # true predecessor of our successor position and compare heads.
        # For a correctly placed node this is 0 hops.
        start = ring.predecessor
        if not self._observe_live(start):
            start = live_succ
        probe = self._find_predecessor(
            prefix,
            self.space.add(node.node_id, 1),
            start,
            "verify",
            exclude=node.node_id,
        )
        probe_ring = self.nodes[probe].rings[depth]
        probe_head = next(
            (
                cand
                for cand in probe_ring.successors
                if cand != node.node_id and self._observe_live(cand)
            ),
            None,
        )
        if probe_head is not None and self.space.ring_distance(
            node.node_id, probe_head
        ) < self.space.ring_distance(node.node_id, live_succ):
            live_succ = probe_head
            succ_ring = self.nodes[live_succ].rings[depth]
            self._count("notify")
        if probe != node.node_id:
            # Offer ourselves to the probe's leaf set: if we really are its
            # immediate successor, the distance ordering puts us at its head
            # and the ring heals from the predecessor side too.  Skip the
            # (identical) assignment when the offer changes nothing, so a
            # converged ring sees no writes.
            offered = self._ordered_leafset(
                probe, [node.node_id] + probe_ring.successors
            )
            if offered != probe_ring.successors:
                probe_ring.successors = offered
                self._touch(probe)
        repaired = self._ordered_leafset(
            node.node_id, [live_succ] + succ_ring.successors
        )
        if repaired != ring.successors:
            ring.successors = repaired
            self._touch(node.node_id)
        if succ_ring.predecessor != node.node_id:
            pred_cand = succ_ring.predecessor
            if (
                not self._observe_live(pred_cand)
                or self.space.ring_distance(pred_cand, live_succ)
                > self.space.ring_distance(node.node_id, live_succ)
            ):
                succ_ring.predecessor = node.node_id
                self._touch(live_succ)
                self._count("notify")
        self._build_fingers(
            node, depth, ring.predecessor or live_succ, "refresh_finger"
        )

    def stabilize_to_convergence(self, max_rounds: int = 20) -> int:
        """Stabilize until the link tables equal the static oracle.

        Returns the number of rounds used.  Successor-chain damage repairs
        one position per round (as in Chord), so heavily damaged rings can
        need several; raises if ``max_rounds`` is not enough.
        """
        for round_number in range(1, max_rounds + 1):
            self.stabilize()
            if self.static_links() == self.oracle_links():
                return round_number
        raise RuntimeError(f"not converged after {max_rounds} stabilize rounds")

    # ---------------------------------------------------------------- lookup

    def lookup(self, src: int, key: int) -> Route:
        """Greedy clockwise lookup with leaf-set fallback around failures."""
        cur = self.nodes[src]
        path = [src]
        try:
            for _ in range(MAX_HOPS):
                remaining = self.space.ring_distance(cur.node_id, key)
                if remaining == 0:
                    return Route(path, True, key)
                best: Optional[int] = None
                best_dist = 0
                for contact in cur.routing_contacts():
                    peer = self.nodes.get(contact)
                    if peer is None or not peer.alive:
                        continue
                    dist = self.space.ring_distance(cur.node_id, contact)
                    if 0 < dist <= remaining and dist > best_dist:
                        best, best_dist = contact, dist
                if best is None:
                    return Route(
                        path, self._responsible_live(cur.node_id, key), key
                    )
                self._count("lookup")
                path.append(best)
                cur = self.nodes[best]
            raise RuntimeError("lookup exceeded hop bound")
        finally:
            self.msgs.stats.flush()

    def _responsible_live(self, node_id: int, key: int) -> bool:
        live = self.live_view()
        if not live:
            return False
        return live[predecessor_index(live, key)] == node_id

    # ------------------------------------------------------------ validation

    def static_links(self) -> Dict[int, List[int]]:
        """Current link tables in the static-network format (sorted lists)."""
        return {
            node_id: sorted(node.all_links())
            for node_id, node in self.nodes.items()
            if node.alive
        }

    def oracle_links(self) -> Dict[int, List[int]]:
        """Ground-truth Crescendo links for the current live membership."""
        from ..dhts.crescendo import CrescendoNetwork

        hierarchy = Hierarchy()
        for node_id in self.live_view():
            hierarchy.place(node_id, self.nodes[node_id].path)
        oracle = CrescendoNetwork(self.space, hierarchy, use_numpy=False).build()
        return {n: list(links) for n, links in oracle.links.items()}


def _dedup(items: List[int], exclude: int) -> List[int]:
    """Stable de-duplication, dropping ``exclude`` and ``None`` entries."""
    seen: Set[int] = set()
    out: List[int] = []
    for item in items:
        if item is None or item == exclude or item in seen:
            continue
        seen.add(item)
        out.append(item)
    return out
