"""CLI: fuzz, check, smoke and replay for the verification subsystem.

Examples::

    python -m repro.verify fuzz --seed 7 --events 2000
    python -m repro.verify fuzz --seed 7 --events 400 --mutate crescendo \\
        --save counterexample.json
    python -m repro.verify replay counterexample.json
    python -m repro.verify check --family kandy --size 200
    python -m repro.verify smoke

Exit status 0 means the run matched expectations (clean, or — for
mutation mode and fixtures expecting violations — corruption detected);
1 means violations where none were expected, or an undetected mutation.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..obs import metrics as obs_metrics
from ..perf.dynamic import ENGINE_MODES
from .builders import EXTRA_FAMILIES, FAMILIES, small_network
from .fuzz import FuzzConfig, generate_schedule, replay, run_fuzz, schedule_from_json, schedule_to_json
from .invariants import checkers_for, run_checks
from .mutate import KINDS, mutation_smoke
from .violations import summarize

ALL_FAMILIES = FAMILIES + EXTRA_FAMILIES


def _parse_families(raw: str):
    families = tuple(f.strip() for f in raw.split(",") if f.strip())
    unknown = [f for f in families if f not in ALL_FAMILIES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown families {unknown}; known: {', '.join(ALL_FAMILIES)}"
        )
    return families


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Invariant checking, mutation smoke and churn fuzzing.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="seeded churn fuzzing with checkpoints")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--events", type=int, default=500)
    fuzz.add_argument(
        "--families",
        type=_parse_families,
        default=FAMILIES,
        help="comma-separated family list (default: the paper's ten)",
    )
    fuzz.add_argument("--population", type=int, default=64)
    fuzz.add_argument("--checkpoints", type=int, default=8)
    fuzz.add_argument(
        "--mutate",
        metavar="FAMILY",
        choices=ALL_FAMILIES,
        help="corrupt this family's table at each checkpoint (smoke mode: "
        "the run is expected to find violations)",
    )
    fuzz.add_argument("--mutate-kind", choices=KINDS, default="drop")
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking a failing schedule",
    )
    fuzz.add_argument(
        "--save",
        metavar="OUT.json",
        help="write the (shrunk, if any) failing schedule as a replayable fixture",
    )
    fuzz.add_argument(
        "--metrics", metavar="OUT.json", help="write a metrics snapshot JSON"
    )
    fuzz.add_argument(
        "--engine",
        choices=ENGINE_MODES,
        default="auto",
        help="maintenance engine for the replayed network (default: auto); "
        "any failing schedule must reproduce under either engine",
    )
    fuzz.add_argument(
        "--data-replicas",
        type=int,
        metavar="N",
        help="attach an N-replica data layer: the schedule gains put/get "
        "events and every checkpoint runs the durability oracles",
    )

    rep = sub.add_parser("replay", help="replay a saved counterexample fixture")
    rep.add_argument("fixture", help="path to a schedule JSON")
    rep.add_argument(
        "--engine",
        choices=ENGINE_MODES,
        default="auto",
        help="maintenance engine to replay with (fixtures are engine-agnostic)",
    )

    chk = sub.add_parser("check", help="build one family and run its checkers")
    chk.add_argument("--family", choices=ALL_FAMILIES, required=True)
    chk.add_argument("--size", type=int, default=120)
    chk.add_argument("--seed", type=int, default=0)

    smk = sub.add_parser("smoke", help="mutation smoke across all families")
    smk.add_argument("--seed", type=int, default=0)
    smk.add_argument(
        "--families", type=_parse_families, default=FAMILIES
    )

    args = parser.parse_args(argv)
    registry = obs_metrics.activate(obs_metrics.MetricsRegistry())
    try:
        code = _dispatch(args, registry)
    finally:
        if getattr(args, "metrics", None):
            registry.export_json(args.metrics)
            print(f"wrote metrics snapshot to {args.metrics}", file=sys.stderr)
        obs_metrics.deactivate()
    return code


def _metrics_line(registry) -> str:
    checks = registry.counter("verify.checks").value
    violations = registry.counter("verify.violations").value
    return f"verify.checks={checks} verify.violations={violations}"


def _dispatch(args: argparse.Namespace, registry) -> int:
    if args.command == "fuzz":
        config = FuzzConfig(
            seed=args.seed,
            events=args.events,
            families=args.families,
            population=args.population,
            checkpoints=args.checkpoints,
            mutate_family=args.mutate,
            mutate_kind=args.mutate_kind,
            engine=args.engine,
            data_replicas=args.data_replicas,
        )
        start = time.time()
        report = run_fuzz(config, shrink=not args.no_shrink)
        elapsed = time.time() - start
        print(
            f"fuzz seed={config.seed} events={len(report.schedule)} "
            f"families={','.join(config.families)} "
            f"population={report.replay.final_population} "
            f"checkpoints={report.replay.checkpoints} ({elapsed:.1f}s)"
        )
        print(
            f"replayed: {report.replay.joins} joins, {report.replay.leaves} "
            f"leaves, {report.replay.crashes} crashes, "
            f"{report.replay.lookups_delivered}/{report.replay.lookups_attempted} "
            f"lookups delivered"
        )
        if config.data_replicas is not None:
            delivered = sum(1 for _, ok in report.replay.data_outcomes if ok)
            print(
                f"data layer (replicas={config.data_replicas}): "
                f"{report.replay.puts} puts, {delivered}/"
                f"{report.replay.data_gets} gets answered"
            )
        print(_metrics_line(registry))
        print(summarize(report.violations))
        if report.shrunk is not None:
            print(
                f"shrunk failing schedule: {len(report.schedule)} -> "
                f"{len(report.shrunk)} events ({report.shrink_replays} replays)"
            )
        if args.save and report.failed:
            events = report.shrunk if report.shrunk is not None else report.schedule
            Path(args.save).write_text(schedule_to_json(config, events) + "\n")
            print(f"wrote replayable counterexample to {args.save}")
        if args.mutate:
            detected = any(v for v in report.violations)
            print(
                "mutation detected" if detected else "mutation NOT detected"
            )
            return 0 if detected else 1
        return 1 if report.failed else 0

    if args.command == "replay":
        config, events, expect_violations = schedule_from_json(
            Path(args.fixture).read_text()
        )
        config.engine = args.engine
        report = replay(config, events)
        print(
            f"replayed {len(events)} events: "
            f"{report.replay.checkpoints} checkpoints, "
            f"population {report.replay.final_population}"
        )
        print(_metrics_line(registry))
        print(summarize(report.violations))
        if expect_violations:
            print(
                "expected violations: "
                + ("reproduced" if report.failed else "NOT reproduced")
            )
            return 0 if report.failed else 1
        return 1 if report.failed else 0

    if args.command == "check":
        net = small_network(args.family, seed=args.seed, size=args.size)
        violations = run_checks(net)
        names = ", ".join(c.name for c in checkers_for(net.family))
        print(
            f"{args.family}: size={net.size} built_with={net.built_with} "
            f"checks=[{names}]"
        )
        print(_metrics_line(registry))
        print(summarize(violations))
        return 1 if violations else 0

    if args.command == "smoke":
        report = mutation_smoke(families=args.families, seed=args.seed)
        for family, kinds in report.items():
            for kind, checks in kinds.items():
                print(f"{family}/{kind}: detected by {', '.join(checks)}")
        print(_metrics_line(registry))
        print("mutation smoke passed")
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
