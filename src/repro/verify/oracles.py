"""Differential oracles: reference vs. fast-path equivalence as a library.

Two harnesses, both returning structured violations so any test, CLI or
fuzzer checkpoint can call them:

- :func:`compare_builders` builds the same network twice — scalar
  reference (``use_numpy=False``) vs. bulk numpy path — and compares the
  results.  Deterministic families compare link tables exactly;
  randomized families consume randomness in a different order, so they
  compare distributionally (mean degree, a two-sample Kolmogorov-Smirnov
  test on link distances) plus exact equality of every RNG-independent
  side output (``gap``, ``contact_depth``, ``edge_depth``, degree
  sequences).  Both builds also pass
  :meth:`~repro.core.network.DHTNetwork.check_links_valid`.

- :func:`compare_routing` routes identical (source, key) pairs — with an
  optional alive-set — through the scalar engines of
  :mod:`repro.core.routing` and the batch kernels of
  :mod:`repro.perf.kernels`, and requires hop-for-hop agreement.  With
  ``via_arena=True`` the batch side first round-trips through a real
  shared-memory arena (:mod:`repro.perf.arena`), so the zero-copy
  attach path is held to the same hop-for-hop (and bit-for-bit latency)
  standard as the in-process kernels.

- :func:`compare_protocols` replays one churn schedule through the
  reference and fast dynamic-maintenance engines
  (:class:`~repro.simulation.protocol.SimulatedCrescendo` vs.
  :class:`~repro.perf.dynamic.FastSimulatedCrescendo`) and requires
  identical delivery outcomes, identical per-kind message counts and
  identical final protocol state (link tables, leaf sets, predecessors).

- :func:`compare_storage` drives one deterministic mixed-domain put/get
  workload (:func:`storage_workload`) through the scalar hierarchical
  store and through the vectorized data plane of
  :mod:`repro.perf.storage` (bulk placement + batch get), and requires
  identical placements, identical internal store state and field-for-field
  identical :class:`~repro.storage.store.SearchResult` outcomes — with a
  latency table, bit-identical overlay milliseconds too.

- :func:`check_durability` (with its :class:`DurabilityMonitor` listener)
  is the data-layer durability oracle for churn schedules: no acknowledged
  write goes lost without a crash or a domain-emptying departure to blame,
  holders re-converge to the desired replica run at every quiescent point,
  and copies never escape their storage domain.

When a :mod:`repro.obs.metrics` registry is active, ``verify.checks`` and
``verify.violations`` count oracle runs and findings.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import DomainPath, is_ancestor
from ..core.idspace import predecessor_index
from ..core.network import DHTNetwork, LinkTableError
from ..core.routing import route
from ..obs import metrics as obs_metrics
from ..perf.kernels import batch_route
from ..perf.latency import LatencyTable
from ..simulation.churn import Event, ScheduleReport, run_schedule
from ..simulation.protocol import SimulatedCrescendo
from .violations import InvariantViolationError, Violation

#: Tolerance on mean out-degree for distributional builder comparison.
DEGREE_TOLERANCE = 0.5
#: Significance level for the KS test on link-distance samples.
KS_ALPHA = 0.001


# ----------------------------------------------------------- KS statistics


def ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (no scipy required)."""
    a = sorted(sample_a)
    b = sorted(sample_b)
    i = j = 0
    d = 0.0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / len(a) - j / len(b)))
    return d


def ks_critical(m: int, n: int, alpha: float = KS_ALPHA) -> float:
    """Large-sample critical value for the two-sample KS statistic."""
    c = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c * math.sqrt((m + n) / (m * n))


def link_distances(net: DHTNetwork) -> List[int]:
    """Clockwise distances of every link (the harmonic-draw observable)."""
    space = net.space
    return [
        space.ring_distance(node, link)
        for node in net.node_ids
        for link in net.links[node]
    ]


def mean_degree(net: DHTNetwork) -> float:
    """Average out-degree over the network's nodes."""
    return sum(len(net.links[n]) for n in net.node_ids) / max(1, net.size)


# ------------------------------------------------------- builder equivalence


@dataclass
class BuildComparison:
    """Both builds plus every disagreement found between them."""

    ref: DHTNetwork
    bulk: DHTNetwork
    violations: List[Violation] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.violations

    def raise_on_violations(self) -> "BuildComparison":
        """Raise :class:`InvariantViolationError` unless equivalent."""
        if self.violations:
            raise InvariantViolationError(self.violations)
        return self


def _count_check(extra_violations: int) -> None:
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("verify.checks").inc()
        if extra_violations:
            registry.counter("verify.violations").inc(extra_violations)


def _ensure_built(net: DHTNetwork) -> DHTNetwork:
    if not net._built:
        net.build()
    return net


def compare_builders(
    factory: Callable[[bool], DHTNetwork],
    exact: bool = True,
    side_attrs: Sequence[str] = (),
    compare_degrees: bool = False,
    degree_tolerance: Optional[float] = None,
    ks_alpha: Optional[float] = None,
    max_reported: int = 20,
) -> BuildComparison:
    """Build via ``factory(use_numpy)`` twice and compare the two tables.

    ``factory`` receives the ``use_numpy`` flag and returns a network (built
    or not; unbuilt ones are built here).  With ``exact`` the link tables
    must match node-for-node; otherwise set ``compare_degrees`` (exact
    degree sequences), ``degree_tolerance`` (mean out-degree tolerance),
    ``ks_alpha`` (KS test on link distances) and ``side_attrs`` (attribute
    names that must compare equal, e.g. ``("gap",)``) as appropriate for
    the family.
    """
    ref = _ensure_built(factory(False))
    bulk = _ensure_built(factory(True))
    family = getattr(bulk, "family", "network")

    def violation(message: str, **kw) -> Violation:
        return Violation(check="oracle-build", family=family, message=message, **kw)

    out: List[Violation] = []
    if ref.built_with != "python":
        out.append(violation(f"reference build took the {ref.built_with} path"))
    if bulk.built_with != "numpy":
        out.append(violation(f"bulk build took the {bulk.built_with} path"))
    for net, label in ((ref, "reference"), (bulk, "bulk")):
        try:
            net.check_links_valid()
        except LinkTableError as err:
            out.append(
                violation(
                    f"{label} build has an invalid link table: {err.reason}",
                    node=err.node,
                    link=err.link,
                )
            )
    if ref.node_ids != bulk.node_ids:
        out.append(violation("builds disagree on the node population"))
    elif exact:
        reported = 0
        for node in ref.node_ids:
            if ref.links[node] == bulk.links[node]:
                continue
            missing = set(ref.links[node]) - set(bulk.links[node])
            extra = set(bulk.links[node]) - set(ref.links[node])
            out.append(
                violation(
                    f"link tables differ (bulk missing {sorted(missing)[:4]}, "
                    f"extra {sorted(extra)[:4]})",
                    node=node,
                )
            )
            reported += 1
            if reported >= max_reported:
                out.append(violation("... further differing nodes suppressed"))
                break
    else:
        if compare_degrees and ref.degrees() != bulk.degrees():
            out.append(violation("degree sequences differ"))
        if degree_tolerance is not None:
            diff = abs(mean_degree(ref) - mean_degree(bulk))
            if diff >= degree_tolerance:
                out.append(violation(f"mean degrees differ by {diff:.3f}"))
        if ks_alpha is not None:
            da, db = link_distances(ref), link_distances(bulk)
            stat = ks_distance(da, db)
            crit = ks_critical(len(da), len(db), ks_alpha)
            if stat >= crit:
                out.append(
                    violation(
                        f"link-distance KS statistic {stat:.4f} exceeds the "
                        f"alpha={ks_alpha} critical value {crit:.4f}"
                    )
                )
    for attr in side_attrs:
        if getattr(ref, attr) != getattr(bulk, attr):
            out.append(violation(f"rng-independent side output {attr!r} differs"))
    _count_check(len(out))
    return BuildComparison(ref=ref, bulk=bulk, violations=out)


# ------------------------------------------------------ protocol equivalence


@dataclass
class ProtocolComparison:
    """Both engines' replays plus every disagreement found between them."""

    ref: SimulatedCrescendo
    fast: SimulatedCrescendo
    ref_report: ScheduleReport
    fast_report: ScheduleReport
    violations: List[Violation] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.violations

    def raise_on_violations(self) -> "ProtocolComparison":
        """Raise :class:`InvariantViolationError` unless equivalent."""
        if self.violations:
            raise InvariantViolationError(self.violations)
        return self


def compare_protocols(
    factory: Callable[[str], SimulatedCrescendo],
    events: Sequence[Event],
    max_reported: int = 20,
    latency: Optional[LatencyTable] = None,
) -> ProtocolComparison:
    """Replay one schedule through both maintenance engines and compare.

    ``factory`` receives an engine name (``"reference"`` or ``"fast"``) and
    returns a bootstrapped network; both instances then replay ``events``
    via :func:`~repro.simulation.churn.run_schedule`.  Equivalence demands:

    - identical replay reports, including every per-lookup
      (delivered, terminal node) outcome and hop path;
    - identical per-kind protocol message counts;
    - identical final protocol state: live membership, link tables, and
      per-level leaf sets and predecessor pointers;
    - with a ``latency`` table (covering every id the schedule can
      route through): bit-identical per-lookup latency totals, computing
      the reference side with the scalar per-hop fold and the fast side
      with the table's vectorized gather — the engine-parity contract of
      the fused latency accumulator.
    """
    ref = factory("reference")
    fast = factory("fast")

    def violation(message: str, **kw) -> Violation:
        return Violation(
            check="oracle-protocol", family="protocol", message=message, **kw
        )

    out: List[Violation] = []
    if ref.engine != "reference":
        out.append(violation(f"reference factory built the {ref.engine} engine"))
    if fast.engine != "fast":
        out.append(violation(f"fast factory built the {fast.engine} engine"))
    ref_report = run_schedule(ref, list(events))
    fast_report = run_schedule(fast, list(events))
    for field_name, ref_value in dataclasses.asdict(ref_report).items():
        fast_value = getattr(fast_report, field_name)
        if ref_value != fast_value:
            out.append(
                violation(
                    f"replay reports disagree on {field_name}: "
                    f"reference {ref_value!r} vs fast {fast_value!r}"
                )
            )
    if latency is not None:
        for idx, (ref_path, fast_path) in enumerate(
            zip(ref_report.lookup_paths, fast_report.lookup_paths)
        ):
            if ref_path != fast_path:
                continue  # path divergence is already reported above
            ref_ms = sum(
                latency.node_latency(a, b)
                for a, b in zip(ref_path, ref_path[1:])
            )
            fast_ms = latency.path_ms(fast_path)
            if ref_ms != fast_ms:
                out.append(
                    violation(
                        f"lookup {idx}: reference latency {ref_ms!r} ms vs "
                        f"fast vectorized {fast_ms!r} ms"
                    )
                )
    ref_counts = dict(ref.msgs.stats.counts)
    fast_counts = dict(fast.msgs.stats.counts)
    for kind in sorted(set(ref_counts) | set(fast_counts)):
        a, b = ref_counts.get(kind, 0), fast_counts.get(kind, 0)
        if a != b:
            out.append(
                violation(
                    f"message counts disagree for {kind!r}: "
                    f"reference {a} vs fast {b}"
                )
            )
    ref_links = ref.static_links()
    fast_links = fast.static_links()
    if set(ref_links) != set(fast_links):
        out.append(violation("engines disagree on the live membership"))
    else:
        reported = 0
        for node_id in sorted(ref_links):
            if ref_links[node_id] != fast_links[node_id]:
                out.append(
                    violation("final link tables differ", node=node_id)
                )
                reported += 1
            else:
                ref_node = ref.nodes[node_id]
                fast_node = fast.nodes[node_id]
                for depth in range(ref_node.leaf_depth + 1):
                    a, b = ref_node.rings[depth], fast_node.rings[depth]
                    if a.successors != b.successors or a.predecessor != b.predecessor:
                        out.append(
                            violation(
                                "final ring state differs",
                                node=node_id,
                                level=depth,
                            )
                        )
                        reported += 1
                        break
            if reported >= max_reported:
                out.append(violation("... further differing nodes suppressed"))
                break
    _count_check(len(out))
    return ProtocolComparison(
        ref=ref,
        fast=fast,
        ref_report=ref_report,
        fast_report=fast_report,
        violations=out,
    )


# ------------------------------------------------------- routing equivalence


def compare_routing(
    network: DHTNetwork,
    pairs: Sequence[Tuple[int, int]],
    alive: Optional[Set[int]] = None,
    max_reported: int = 20,
    latency: Optional["LatencyTable"] = None,
    via_arena: bool = False,
) -> List[Violation]:
    """Scalar engines vs. batch kernels on identical inputs, hop-for-hop.

    Routes every (source, key) pair through
    :func:`repro.core.routing.route` and through
    :func:`repro.perf.kernels.batch_route` (same optional alive-set) and
    reports any disagreement in success flag, terminal node or the exact
    hop sequence.  With a ``latency`` table, additionally demands that the
    kernels' fused per-hop latency accumulator reproduces the scalar
    ``Route.latency`` fold bit-for-bit on every route.

    ``via_arena=True`` exports the compiled network (and the latency
    table, when given) into a shared-memory arena, attaches a fresh view,
    and routes the batch side over *that* — proving the arena round-trip
    changes nothing.  The segment is disposed before comparison returns
    (batch results are freshly allocated, never views into the arena).
    """
    family = getattr(network, "family", "network")
    out: List[Violation] = []
    if via_arena:
        from ..perf import arena as perf_arena
        from ..perf.kernels import compile_network

        owner = perf_arena.export_network(
            compile_network(network), latency=latency, label="oracle"
        )
        try:
            view = perf_arena.attach_network(owner.manifest)
            batch = view.compiled.route(
                [p[0] for p in pairs],
                [p[1] for p in pairs],
                alive=alive,
                paths=True,
                latency=view.latency if latency is not None else None,
            )
        finally:
            owner.dispose()
    else:
        batch = batch_route(network, pairs, alive=alive, paths=True, latency=latency)
    for idx, ((src, key), fast) in enumerate(zip(pairs, batch.routes())):
        slow = route(network, src, key, alive=alive)
        if latency is not None and slow.path == fast.path:
            slow_ms = slow.latency(latency.node_latency)
            fast_ms = float(batch.latency_ms[idx])
            if slow_ms != fast_ms:
                out.append(
                    Violation(
                        check="oracle-routing",
                        family=family,
                        message=(
                            f"route {src}->{key}: scalar latency {slow_ms!r} ms "
                            f"but batch accumulated {fast_ms!r} ms"
                        ),
                        node=src,
                    )
                )
        if slow.success != fast.success:
            out.append(
                Violation(
                    check="oracle-routing",
                    family=family,
                    message=(
                        f"route {src}->{key}: scalar success={slow.success} "
                        f"but batch success={fast.success}"
                    ),
                    node=src,
                )
            )
        elif slow.path != fast.path:
            hop = next(
                (i for i, (a, b) in enumerate(zip(slow.path, fast.path)) if a != b),
                min(len(slow.path), len(fast.path)),
            )
            out.append(
                Violation(
                    check="oracle-routing",
                    family=family,
                    message=(
                        f"route {src}->{key} diverges at hop {hop}: scalar "
                        f"{slow.path[hop:hop + 2]} vs batch {fast.path[hop:hop + 2]}"
                    ),
                    node=src,
                    level=hop,
                )
            )
        if len(out) >= max_reported:
            out.append(
                Violation(
                    check="oracle-routing",
                    family=family,
                    message="... further route disagreements suppressed",
                )
            )
            break
    _count_check(len(out))
    return out


# ------------------------------------------------------- storage equivalence


def storage_workload(
    network: DHTNetwork,
    rng: random.Random,
    puts: int = 64,
    gets: int = 128,
    max_depth: Optional[int] = None,
) -> Tuple[List[Tuple], List[Tuple[int, object]]]:
    """A deterministic mixed-domain put/get workload over a built network.

    Put operations are ``(origin, key, value, storage_domain,
    access_domain)`` tuples: the storage domain is a random-length prefix of
    the origin's hierarchy path (clamped to ``max_depth`` when given) and
    the access domain a random-length prefix of the storage domain — every
    legal pair, including the pointer-producing ones.  Get operations are
    ``(origin, key)`` with 80% of keys drawn from the puts and the rest
    guaranteed absent.
    """
    ids = list(network.node_ids)
    hierarchy = network.hierarchy
    put_ops: List[Tuple] = []
    for i in range(puts):
        origin = ids[rng.randrange(len(ids))]
        path = hierarchy.path_of(origin)
        depth = len(path) if max_depth is None else min(max_depth, len(path))
        storage_domain = path[: rng.randrange(depth + 1)]
        access_domain = storage_domain[: rng.randrange(len(storage_domain) + 1)]
        put_ops.append(
            (origin, f"key-{i}", f"value-{i}", storage_domain, access_domain)
        )
    get_ops: List[Tuple[int, object]] = []
    for i in range(gets):
        origin = ids[rng.randrange(len(ids))]
        if put_ops and rng.random() < 0.8:
            key = put_ops[rng.randrange(len(put_ops))][1]
        else:
            key = f"absent-{i}"
        get_ops.append((origin, key))
    return put_ops, get_ops


def compare_storage(
    network: DHTNetwork,
    puts: int = 64,
    gets: int = 128,
    replicas: Optional[int] = None,
    latency: Optional[LatencyTable] = None,
    rng: Optional[random.Random] = None,
    max_reported: int = 20,
) -> List[Violation]:
    """Scalar store vs. vectorized data plane on one workload, bit-for-bit.

    Runs :func:`storage_workload` twice over two fresh stores on the same
    network: the reference side as a sequence of scalar
    :meth:`~repro.storage.store.HierarchicalStore.put` /
    :meth:`~repro.storage.store.HierarchicalStore.get` calls, the fast side
    through :func:`repro.perf.storage.bulk_put` (one call per domain pair,
    first-occurrence order) and :meth:`repro.perf.storage.CompiledStore.batch_get`.
    Equivalence demands identical placements (homes, pointer nodes, replica
    sets when ``replicas`` is given), identical internal item/pointer state,
    and per-get identical values, path, found_at, via_pointer, pointer_hops
    and content_node — plus, with a ``latency`` table, bit-identical overlay
    milliseconds against :func:`repro.perf.storage.scalar_search_latency`.

    The prefix families (CAN, Can-Can) pin domains to the root: their
    ``responsible_node`` is zone containment over a partition of the full
    ring (identical to the predecessor rule there), but a proper sub-domain
    of zones does not cover the keyspace, so domain-scoped placement is
    undefined for them in the scalar store too.
    """
    from ..perf.storage import (
        CompiledStore,
        bulk_put,
        bulk_put_replicated,
        scalar_search_latency,
    )
    from ..storage.replication import ReplicatedStore
    from ..storage.store import HierarchicalStore
    from .builders import PREFIX_FAMILIES

    family = getattr(network, "family", "network")
    rng = rng if rng is not None else random.Random(f"storage-oracle:{family}")
    max_depth = 0 if family in PREFIX_FAMILIES else None
    put_ops, get_ops = storage_workload(
        network, rng, puts=puts, gets=gets, max_depth=max_depth
    )

    def violation(message: str, **kw) -> Violation:
        return Violation(
            check="oracle-storage", family=family, message=message, **kw
        )

    out: List[Violation] = []
    ref_store = HierarchicalStore(network)
    bulk_store = HierarchicalStore(network)
    ref_rep = ReplicatedStore(ref_store, replicas) if replicas else None
    bulk_rep = ReplicatedStore(bulk_store, replicas) if replicas else None

    scalar_returns = []
    for origin, key, value, storage_domain, access_domain in put_ops:
        target = ref_rep if ref_rep is not None else ref_store
        scalar_returns.append(
            target.put(origin, key, value, storage_domain, access_domain)
        )

    # Bulk side: one call per (storage, access) pair in first-occurrence
    # order; with unique keys the per-bucket append order is unchanged, so
    # the stores must end up dict-identical.
    groups: Dict[Tuple[DomainPath, DomainPath], List[int]] = {}
    for idx, op in enumerate(put_ops):
        groups.setdefault((op[3], op[4]), []).append(idx)
    for (storage_domain, access_domain), rows in groups.items():
        origins = [put_ops[i][0] for i in rows]
        keys = [put_ops[i][1] for i in rows]
        values = [put_ops[i][2] for i in rows]
        if bulk_rep is not None:
            plan = bulk_put_replicated(
                bulk_rep, origins, keys, values, storage_domain, access_domain
            )
        else:
            plan = bulk_put(
                bulk_store, origins, keys, values, storage_domain, access_domain
            )
        for j, i in enumerate(rows):
            if bulk_rep is not None:
                planned = plan.replica_sets[j].tolist()
            else:
                pointer = (
                    int(plan.pointer_nodes[j])
                    if plan.pointer_nodes is not None
                    else None
                )
                planned = (int(plan.homes[j]), pointer)
            if planned != scalar_returns[i] and len(out) < max_reported:
                out.append(
                    violation(
                        f"put {keys[j]!r}: scalar placed {scalar_returns[i]!r} "
                        f"but the vectorized plan says {planned!r}",
                        node=origins[j],
                    )
                )
    if ref_store._items != bulk_store._items:
        out.append(
            violation("bulk puts left different items than the scalar sequence")
        )
    if ref_store._pointers != bulk_store._pointers:
        out.append(
            violation("bulk puts left different pointers than the scalar sequence")
        )
    if ref_rep is not None and ref_rep.replica_sets != bulk_rep.replica_sets:
        out.append(violation("replica sets differ between scalar and bulk puts"))

    compiled = CompiledStore(bulk_store)
    batch = compiled.batch_get(
        [op[0] for op in get_ops], [op[1] for op in get_ops], latency=latency
    )
    reader = ref_rep if ref_rep is not None else ref_store
    for idx, ((origin, key), fast) in enumerate(zip(get_ops, batch.results())):
        slow = reader.get(origin, key)
        for field_name in (
            "values", "path", "found_at", "via_pointer",
            "pointer_hops", "content_node",
        ):
            a, b = getattr(slow, field_name), getattr(fast, field_name)
            if a != b:
                out.append(
                    violation(
                        f"get {key!r} from {origin}: {field_name} scalar "
                        f"{a!r} vs batch {b!r}",
                        node=origin,
                    )
                )
        if latency is not None and slow.path == fast.path:
            slow_ms = scalar_search_latency(network, latency, slow)
            fast_ms = float(batch.latency_ms[idx])
            if slow_ms != fast_ms:
                out.append(
                    violation(
                        f"get {key!r}: scalar latency {slow_ms!r} ms vs "
                        f"batch accumulated {fast_ms!r} ms",
                        node=origin,
                    )
                )
        if len(out) >= max_reported:
            out.append(violation("... further storage disagreements suppressed"))
            break
    _count_check(len(out))
    return out


# --------------------------------------------------------------- durability


class DurabilityMonitor:
    """Listener classifying data-layer key losses as legitimate or not.

    Register *after* the data layer on the same network, so every hook
    observes the layer's post-handoff / post-rebalance holder state.  An
    acknowledged write may legitimately go lost only when

    - at least one **crash** happened since the last repair opportunity
      (crash faults can destroy every copy before stabilization runs), or
    - a **graceful departure emptied the key's storage domain** (content is
      pinned inside its domain and cannot follow the leaver out).

    Any other transition to the lost state is recorded as an
    ``oracle-durability`` violation; :func:`check_durability` drains them
    at the next quiescent point.
    """

    def __init__(self, net: SimulatedCrescendo, data) -> None:
        self.net = net
        self.data = data
        self.crashes_since_repair = 0
        self.known_lost: Set[int] = set()
        self.violations: List[Violation] = []
        net.listeners.append(self)

    def drain(self) -> List[Violation]:
        """Collected violations since the last drain (clears the buffer)."""
        out, self.violations = self.violations, []
        return out

    def _newly_lost(self) -> List[int]:
        fresh = [
            kh
            for kh, holders in self.data.holders.items()
            if not holders and kh not in self.known_lost
        ]
        self.known_lost.update(fresh)
        return fresh

    def _flag(self, key_hash: int, message: str) -> None:
        self.violations.append(
            Violation(check="oracle-durability", family="data", message=message)
        )

    # ------------------------------------------------------------- listeners

    def node_joined(self, node_id: int) -> None:
        """A join rebalance may never lose a key absent unrepaired crashes."""
        for kh in self._newly_lost():
            if self.crashes_since_repair == 0:
                self._flag(
                    kh,
                    f"key {self.data.items[kh].key!r} went lost at a join "
                    f"rebalance with no crash since the last repair",
                )
        self.crashes_since_repair = 0

    def node_leaving(self, node_id: int) -> None:
        """A graceful departure may only lose keys whose domain it empties."""
        for kh in self._newly_lost():
            domain = self.data.items[kh].storage_domain
            survivors = [
                n
                for n in self.net.hierarchy.members(domain)
                if n != node_id and self.net.nodes[n].alive
            ]
            if survivors:
                self._flag(
                    kh,
                    f"key {self.data.items[kh].key!r} went lost on the "
                    f"graceful departure of {node_id} although domain "
                    f"{domain!r} still has {len(survivors)} live members",
                )

    def node_crashed(self, node_id: int) -> None:
        """Crashes legitimize losses until the next repair-bearing event."""
        self.crashes_since_repair += 1

    def stabilized(self) -> None:
        """A stabilization repair may only lose crash-orphaned keys."""
        for kh in self._newly_lost():
            if self.crashes_since_repair == 0:
                self._flag(
                    kh,
                    f"key {self.data.items[kh].key!r} went lost at "
                    f"stabilization with no crash since the last repair",
                )
        self.crashes_since_repair = 0


def check_durability(
    net: SimulatedCrescendo,
    data,
    monitor: Optional[DurabilityMonitor] = None,
    max_reported: int = 20,
) -> List[Violation]:
    """Quiescent-point durability oracle over a data layer.

    Drains the monitor's loss classifications, then demands for every
    non-lost key: all holders alive, all holders inside the key's storage
    domain (domain scoping survives churn and migration), and the holder
    list exactly equal to the recomputed desired replica run (responsible
    node + ring predecessors over the live domain members) — i.e. repair
    has re-converged.  Call at a stabilized point (the layer rebalances on
    the ``stabilized`` hook), as the fuzzer's checkpoints do.
    """
    out: List[Violation] = [] if monitor is None else monitor.drain()

    def violation(message: str, **kw) -> Violation:
        return Violation(
            check="oracle-durability", family="data", message=message, **kw
        )

    live = {n for n, node in net.nodes.items() if node.alive}
    members_cache: Dict[DomainPath, List[int]] = {}
    reported = 0
    for key_hash, holders in data.holders.items():
        if not holders:
            continue  # lost keys are the monitor's business
        item = data.items[key_hash]
        domain = item.storage_domain
        members = members_cache.get(domain)
        if members is None:
            members = sorted(
                n for n in net.hierarchy.members(domain) if n in live
            )
            members_cache[domain] = members
        problems = []
        dead = [h for h in holders if h not in live]
        if dead:
            problems.append(f"dead holders {dead}")
        outside = [
            h
            for h in holders
            if h not in dead and not is_ancestor(domain, net.hierarchy.path_of(h))
        ]
        if outside:
            problems.append(f"holders {outside} outside domain {domain!r}")
        if members:
            start = predecessor_index(members, item.key_hash)
            count = min(data.replicas, len(members))
            desired = [members[(start - i) % len(members)] for i in range(count)]
        else:
            desired = []
        if holders != desired:
            problems.append(f"holders {holders} not re-converged to {desired}")
        if problems:
            out.append(
                violation(
                    f"key {item.key!r}: " + "; ".join(problems),
                )
            )
            reported += 1
            if reported >= max_reported:
                out.append(violation("... further durability findings suppressed"))
                break
    _count_check(len(out))
    return out

# ------------------------------------------------------- serving equivalence


@dataclass
class ServingComparison:
    """Scalar vs. batched serving of one lookup schedule."""

    scalar: List  # AsyncResult completions, scalar-completion order
    report: object  # repro.serve.ServeReport from the batched run
    violations: List[Violation] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.violations

    def raise_on_violations(self) -> "ServingComparison":
        """Raise :class:`InvariantViolationError` unless equivalent."""
        if self.violations:
            raise InvariantViolationError(self.violations)
        return self


def compare_serving(
    factory: Callable[[], SimulatedCrescendo],
    lookups: Sequence[Tuple[int, int]],
    churn: Sequence[Tuple[int, Callable[[SimulatedCrescendo], None]]] = (),
    hop_time: float = 1.0,
    policy=None,
    max_reported: int = 20,
) -> ServingComparison:
    """Scalar ``AsyncEngine`` vs. batched ``ServeRuntime``, same schedule.

    Builds the net twice via ``factory()`` (which must be deterministic and
    leave messages on a constant-``hop_time`` latency model), launches every
    ``(source, key)`` lookup at once on both engines, and requires
    per-lookup agreement on success flag, terminal node and hop count.

    ``churn`` entries are ``(after_ticks, fn)``: each ``fn(net)`` is a
    *synchronous* mutator (e.g. ``net.crash``) applied after the batched
    runtime's tick ``after_ticks`` (ticks count from 1), followed by a view
    recompile.  On the scalar side the same mutator is scheduled at virtual
    time ``(after_ticks - 0.5) * hop_time`` past launch — strictly between
    the message deliveries of hops ``after_ticks`` and ``after_ticks + 1``,
    which is the same point in routing progress: both engines decide hop
    ``k+1`` with post-churn state and hop ``k`` without.  This pins the
    batched frontier stepping to the discrete-event engine hop for hop on
    a *live, churning* network, not just a frozen snapshot.

    ``policy`` (default: no policy) must be outcome-invariant for the
    comparison to make sense — retries with ``retry_alternates`` or finite
    deadlines change outcomes by design and will be reported as
    violations.
    """
    from ..simulation.async_lookup import AsyncEngine
    from ..serve import ServeRuntime, compile_protocol_view
    from ..serve.policy import NO_POLICY

    out: List[Violation] = []

    def violation(message: str, **kw) -> Violation:
        return Violation(
            check="oracle-serving", family="serving", message=message, **kw
        )

    # --- scalar side: all lookups at once, churn on the virtual clock.
    net_a = factory()
    engine = AsyncEngine(net_a)
    for after_ticks, fn in churn:
        if after_ticks < 1:
            raise ValueError("churn entries start at tick 1")
        net_a.sim.schedule(
            (after_ticks - 0.5) * hop_time, (lambda f=fn: f(net_a))
        )
    for src, key in lookups:
        engine.lookup(src, key)
    net_a.sim.run()
    scalar_by_pair: Dict[Tuple[int, int], List[Tuple[bool, int, int]]] = {}
    for result in engine.completed:
        scalar_by_pair.setdefault((result.path[0], result.key), []).append(
            (result.success, result.path[-1], result.hops)
        )

    # --- batched side: same lookups, same churn keyed to tick counts.
    net_b = factory()
    runtime = ServeRuntime(
        *compile_protocol_view(net_b),
        policy=policy if policy is not None else NO_POLICY,
    )
    runtime.submit_many([s for s, _ in lookups], [k for _, k in lookups])
    pending = sorted(churn, key=lambda entry: entry[0])
    ticks = idx = 0
    while runtime.in_flight:
        runtime.tick()
        ticks += 1
        recompiled = False
        while idx < len(pending) and pending[idx][0] == ticks:
            pending[idx][1](net_b)
            idx += 1
            recompiled = True
        if recompiled:
            runtime.set_view(*compile_protocol_view(net_b))
    report = runtime.report()

    if len(engine.completed) != report.size:
        out.append(
            violation(
                f"scalar completed {len(engine.completed)} lookups "
                f"but batched completed {report.size}"
            )
        )
    batched_by_pair: Dict[Tuple[int, int], List[Tuple[bool, int, int]]] = {}
    for src, key, term, hops, success in zip(
        report.sources, report.keys, report.terminals,
        report.hops, report.success,
    ):
        batched_by_pair.setdefault((int(src), int(key)), []).append(
            (bool(success), int(term), int(hops))
        )
    for pair in dict.fromkeys((int(s), int(k)) for s, k in lookups):
        expected = sorted(scalar_by_pair.get(pair, []))
        got = sorted(batched_by_pair.get(pair, []))
        if expected != got:
            out.append(
                violation(
                    f"lookup {pair[0]}->{pair[1]}: scalar "
                    f"(success, terminal, hops) {expected} "
                    f"but batched {got}",
                    node=pair[0],
                )
            )
            if len(out) >= max_reported:
                out.append(
                    violation("... further serving disagreements suppressed")
                )
                break
    _count_check(len(out))
    return ServingComparison(
        scalar=list(engine.completed), report=report, violations=out
    )
