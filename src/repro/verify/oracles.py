"""Differential oracles: reference vs. fast-path equivalence as a library.

Two harnesses, both returning structured violations so any test, CLI or
fuzzer checkpoint can call them:

- :func:`compare_builders` builds the same network twice — scalar
  reference (``use_numpy=False``) vs. bulk numpy path — and compares the
  results.  Deterministic families compare link tables exactly;
  randomized families consume randomness in a different order, so they
  compare distributionally (mean degree, a two-sample Kolmogorov-Smirnov
  test on link distances) plus exact equality of every RNG-independent
  side output (``gap``, ``contact_depth``, ``edge_depth``, degree
  sequences).  Both builds also pass
  :meth:`~repro.core.network.DHTNetwork.check_links_valid`.

- :func:`compare_routing` routes identical (source, key) pairs — with an
  optional alive-set — through the scalar engines of
  :mod:`repro.core.routing` and the batch kernels of
  :mod:`repro.perf.kernels`, and requires hop-for-hop agreement.  With
  ``via_arena=True`` the batch side first round-trips through a real
  shared-memory arena (:mod:`repro.perf.arena`), so the zero-copy
  attach path is held to the same hop-for-hop (and bit-for-bit latency)
  standard as the in-process kernels.

- :func:`compare_protocols` replays one churn schedule through the
  reference and fast dynamic-maintenance engines
  (:class:`~repro.simulation.protocol.SimulatedCrescendo` vs.
  :class:`~repro.perf.dynamic.FastSimulatedCrescendo`) and requires
  identical delivery outcomes, identical per-kind message counts and
  identical final protocol state (link tables, leaf sets, predecessors).

When a :mod:`repro.obs.metrics` registry is active, ``verify.checks`` and
``verify.violations`` count oracle runs and findings.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..core.network import DHTNetwork, LinkTableError
from ..core.routing import route
from ..obs import metrics as obs_metrics
from ..perf.kernels import batch_route
from ..perf.latency import LatencyTable
from ..simulation.churn import Event, ScheduleReport, run_schedule
from ..simulation.protocol import SimulatedCrescendo
from .violations import InvariantViolationError, Violation

#: Tolerance on mean out-degree for distributional builder comparison.
DEGREE_TOLERANCE = 0.5
#: Significance level for the KS test on link-distance samples.
KS_ALPHA = 0.001


# ----------------------------------------------------------- KS statistics


def ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (no scipy required)."""
    a = sorted(sample_a)
    b = sorted(sample_b)
    i = j = 0
    d = 0.0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            i += 1
        else:
            j += 1
        d = max(d, abs(i / len(a) - j / len(b)))
    return d


def ks_critical(m: int, n: int, alpha: float = KS_ALPHA) -> float:
    """Large-sample critical value for the two-sample KS statistic."""
    c = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c * math.sqrt((m + n) / (m * n))


def link_distances(net: DHTNetwork) -> List[int]:
    """Clockwise distances of every link (the harmonic-draw observable)."""
    space = net.space
    return [
        space.ring_distance(node, link)
        for node in net.node_ids
        for link in net.links[node]
    ]


def mean_degree(net: DHTNetwork) -> float:
    """Average out-degree over the network's nodes."""
    return sum(len(net.links[n]) for n in net.node_ids) / max(1, net.size)


# ------------------------------------------------------- builder equivalence


@dataclass
class BuildComparison:
    """Both builds plus every disagreement found between them."""

    ref: DHTNetwork
    bulk: DHTNetwork
    violations: List[Violation] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.violations

    def raise_on_violations(self) -> "BuildComparison":
        """Raise :class:`InvariantViolationError` unless equivalent."""
        if self.violations:
            raise InvariantViolationError(self.violations)
        return self


def _count_check(extra_violations: int) -> None:
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.counter("verify.checks").inc()
        if extra_violations:
            registry.counter("verify.violations").inc(extra_violations)


def _ensure_built(net: DHTNetwork) -> DHTNetwork:
    if not net._built:
        net.build()
    return net


def compare_builders(
    factory: Callable[[bool], DHTNetwork],
    exact: bool = True,
    side_attrs: Sequence[str] = (),
    compare_degrees: bool = False,
    degree_tolerance: Optional[float] = None,
    ks_alpha: Optional[float] = None,
    max_reported: int = 20,
) -> BuildComparison:
    """Build via ``factory(use_numpy)`` twice and compare the two tables.

    ``factory`` receives the ``use_numpy`` flag and returns a network (built
    or not; unbuilt ones are built here).  With ``exact`` the link tables
    must match node-for-node; otherwise set ``compare_degrees`` (exact
    degree sequences), ``degree_tolerance`` (mean out-degree tolerance),
    ``ks_alpha`` (KS test on link distances) and ``side_attrs`` (attribute
    names that must compare equal, e.g. ``("gap",)``) as appropriate for
    the family.
    """
    ref = _ensure_built(factory(False))
    bulk = _ensure_built(factory(True))
    family = getattr(bulk, "family", "network")

    def violation(message: str, **kw) -> Violation:
        return Violation(check="oracle-build", family=family, message=message, **kw)

    out: List[Violation] = []
    if ref.built_with != "python":
        out.append(violation(f"reference build took the {ref.built_with} path"))
    if bulk.built_with != "numpy":
        out.append(violation(f"bulk build took the {bulk.built_with} path"))
    for net, label in ((ref, "reference"), (bulk, "bulk")):
        try:
            net.check_links_valid()
        except LinkTableError as err:
            out.append(
                violation(
                    f"{label} build has an invalid link table: {err.reason}",
                    node=err.node,
                    link=err.link,
                )
            )
    if ref.node_ids != bulk.node_ids:
        out.append(violation("builds disagree on the node population"))
    elif exact:
        reported = 0
        for node in ref.node_ids:
            if ref.links[node] == bulk.links[node]:
                continue
            missing = set(ref.links[node]) - set(bulk.links[node])
            extra = set(bulk.links[node]) - set(ref.links[node])
            out.append(
                violation(
                    f"link tables differ (bulk missing {sorted(missing)[:4]}, "
                    f"extra {sorted(extra)[:4]})",
                    node=node,
                )
            )
            reported += 1
            if reported >= max_reported:
                out.append(violation("... further differing nodes suppressed"))
                break
    else:
        if compare_degrees and ref.degrees() != bulk.degrees():
            out.append(violation("degree sequences differ"))
        if degree_tolerance is not None:
            diff = abs(mean_degree(ref) - mean_degree(bulk))
            if diff >= degree_tolerance:
                out.append(violation(f"mean degrees differ by {diff:.3f}"))
        if ks_alpha is not None:
            da, db = link_distances(ref), link_distances(bulk)
            stat = ks_distance(da, db)
            crit = ks_critical(len(da), len(db), ks_alpha)
            if stat >= crit:
                out.append(
                    violation(
                        f"link-distance KS statistic {stat:.4f} exceeds the "
                        f"alpha={ks_alpha} critical value {crit:.4f}"
                    )
                )
    for attr in side_attrs:
        if getattr(ref, attr) != getattr(bulk, attr):
            out.append(violation(f"rng-independent side output {attr!r} differs"))
    _count_check(len(out))
    return BuildComparison(ref=ref, bulk=bulk, violations=out)


# ------------------------------------------------------ protocol equivalence


@dataclass
class ProtocolComparison:
    """Both engines' replays plus every disagreement found between them."""

    ref: SimulatedCrescendo
    fast: SimulatedCrescendo
    ref_report: ScheduleReport
    fast_report: ScheduleReport
    violations: List[Violation] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.violations

    def raise_on_violations(self) -> "ProtocolComparison":
        """Raise :class:`InvariantViolationError` unless equivalent."""
        if self.violations:
            raise InvariantViolationError(self.violations)
        return self


def compare_protocols(
    factory: Callable[[str], SimulatedCrescendo],
    events: Sequence[Event],
    max_reported: int = 20,
    latency: Optional[LatencyTable] = None,
) -> ProtocolComparison:
    """Replay one schedule through both maintenance engines and compare.

    ``factory`` receives an engine name (``"reference"`` or ``"fast"``) and
    returns a bootstrapped network; both instances then replay ``events``
    via :func:`~repro.simulation.churn.run_schedule`.  Equivalence demands:

    - identical replay reports, including every per-lookup
      (delivered, terminal node) outcome and hop path;
    - identical per-kind protocol message counts;
    - identical final protocol state: live membership, link tables, and
      per-level leaf sets and predecessor pointers;
    - with a ``latency`` table (covering every id the schedule can
      route through): bit-identical per-lookup latency totals, computing
      the reference side with the scalar per-hop fold and the fast side
      with the table's vectorized gather — the engine-parity contract of
      the fused latency accumulator.
    """
    ref = factory("reference")
    fast = factory("fast")

    def violation(message: str, **kw) -> Violation:
        return Violation(
            check="oracle-protocol", family="protocol", message=message, **kw
        )

    out: List[Violation] = []
    if ref.engine != "reference":
        out.append(violation(f"reference factory built the {ref.engine} engine"))
    if fast.engine != "fast":
        out.append(violation(f"fast factory built the {fast.engine} engine"))
    ref_report = run_schedule(ref, list(events))
    fast_report = run_schedule(fast, list(events))
    for field_name, ref_value in dataclasses.asdict(ref_report).items():
        fast_value = getattr(fast_report, field_name)
        if ref_value != fast_value:
            out.append(
                violation(
                    f"replay reports disagree on {field_name}: "
                    f"reference {ref_value!r} vs fast {fast_value!r}"
                )
            )
    if latency is not None:
        for idx, (ref_path, fast_path) in enumerate(
            zip(ref_report.lookup_paths, fast_report.lookup_paths)
        ):
            if ref_path != fast_path:
                continue  # path divergence is already reported above
            ref_ms = sum(
                latency.node_latency(a, b)
                for a, b in zip(ref_path, ref_path[1:])
            )
            fast_ms = latency.path_ms(fast_path)
            if ref_ms != fast_ms:
                out.append(
                    violation(
                        f"lookup {idx}: reference latency {ref_ms!r} ms vs "
                        f"fast vectorized {fast_ms!r} ms"
                    )
                )
    ref_counts = dict(ref.msgs.stats.counts)
    fast_counts = dict(fast.msgs.stats.counts)
    for kind in sorted(set(ref_counts) | set(fast_counts)):
        a, b = ref_counts.get(kind, 0), fast_counts.get(kind, 0)
        if a != b:
            out.append(
                violation(
                    f"message counts disagree for {kind!r}: "
                    f"reference {a} vs fast {b}"
                )
            )
    ref_links = ref.static_links()
    fast_links = fast.static_links()
    if set(ref_links) != set(fast_links):
        out.append(violation("engines disagree on the live membership"))
    else:
        reported = 0
        for node_id in sorted(ref_links):
            if ref_links[node_id] != fast_links[node_id]:
                out.append(
                    violation("final link tables differ", node=node_id)
                )
                reported += 1
            else:
                ref_node = ref.nodes[node_id]
                fast_node = fast.nodes[node_id]
                for depth in range(ref_node.leaf_depth + 1):
                    a, b = ref_node.rings[depth], fast_node.rings[depth]
                    if a.successors != b.successors or a.predecessor != b.predecessor:
                        out.append(
                            violation(
                                "final ring state differs",
                                node=node_id,
                                level=depth,
                            )
                        )
                        reported += 1
                        break
            if reported >= max_reported:
                out.append(violation("... further differing nodes suppressed"))
                break
    _count_check(len(out))
    return ProtocolComparison(
        ref=ref,
        fast=fast,
        ref_report=ref_report,
        fast_report=fast_report,
        violations=out,
    )


# ------------------------------------------------------- routing equivalence


def compare_routing(
    network: DHTNetwork,
    pairs: Sequence[Tuple[int, int]],
    alive: Optional[Set[int]] = None,
    max_reported: int = 20,
    latency: Optional["LatencyTable"] = None,
    via_arena: bool = False,
) -> List[Violation]:
    """Scalar engines vs. batch kernels on identical inputs, hop-for-hop.

    Routes every (source, key) pair through
    :func:`repro.core.routing.route` and through
    :func:`repro.perf.kernels.batch_route` (same optional alive-set) and
    reports any disagreement in success flag, terminal node or the exact
    hop sequence.  With a ``latency`` table, additionally demands that the
    kernels' fused per-hop latency accumulator reproduces the scalar
    ``Route.latency`` fold bit-for-bit on every route.

    ``via_arena=True`` exports the compiled network (and the latency
    table, when given) into a shared-memory arena, attaches a fresh view,
    and routes the batch side over *that* — proving the arena round-trip
    changes nothing.  The segment is disposed before comparison returns
    (batch results are freshly allocated, never views into the arena).
    """
    family = getattr(network, "family", "network")
    out: List[Violation] = []
    if via_arena:
        from ..perf import arena as perf_arena
        from ..perf.kernels import compile_network

        owner = perf_arena.export_network(
            compile_network(network), latency=latency, label="oracle"
        )
        try:
            view = perf_arena.attach_network(owner.manifest)
            batch = view.compiled.route(
                [p[0] for p in pairs],
                [p[1] for p in pairs],
                alive=alive,
                paths=True,
                latency=view.latency if latency is not None else None,
            )
        finally:
            owner.dispose()
    else:
        batch = batch_route(network, pairs, alive=alive, paths=True, latency=latency)
    for idx, ((src, key), fast) in enumerate(zip(pairs, batch.routes())):
        slow = route(network, src, key, alive=alive)
        if latency is not None and slow.path == fast.path:
            slow_ms = slow.latency(latency.node_latency)
            fast_ms = float(batch.latency_ms[idx])
            if slow_ms != fast_ms:
                out.append(
                    Violation(
                        check="oracle-routing",
                        family=family,
                        message=(
                            f"route {src}->{key}: scalar latency {slow_ms!r} ms "
                            f"but batch accumulated {fast_ms!r} ms"
                        ),
                        node=src,
                    )
                )
        if slow.success != fast.success:
            out.append(
                Violation(
                    check="oracle-routing",
                    family=family,
                    message=(
                        f"route {src}->{key}: scalar success={slow.success} "
                        f"but batch success={fast.success}"
                    ),
                    node=src,
                )
            )
        elif slow.path != fast.path:
            hop = next(
                (i for i, (a, b) in enumerate(zip(slow.path, fast.path)) if a != b),
                min(len(slow.path), len(fast.path)),
            )
            out.append(
                Violation(
                    check="oracle-routing",
                    family=family,
                    message=(
                        f"route {src}->{key} diverges at hop {hop}: scalar "
                        f"{slow.path[hop:hop + 2]} vs batch {fast.path[hop:hop + 2]}"
                    ),
                    node=src,
                    level=hop,
                )
            )
        if len(out) >= max_reported:
            out.append(
                Violation(
                    check="oracle-routing",
                    family=family,
                    message="... further route disagreements suppressed",
                )
            )
            break
    _count_check(len(out))
    return out
