"""Seeded churn fuzzing: generate, replay, verify, shrink.

The fuzzer derives a deterministic join/leave/crash/lookup schedule from a
seed, replays it through :func:`repro.simulation.churn.run_schedule`, and
at every quiescent checkpoint (a) checks the live protocol state — ring
successor correctness and leaf-set symmetry at every level — and (b)
rebuilds each requested static family over the current live membership
and runs the invariant registry plus a scalar-vs-batch routing
differential on it.

Failing schedules shrink toward a minimal counterexample with a greedy
delta-debugging pass over the event list; the result serializes to JSON
so counterexamples can be checked in as regression fixtures and replayed
with ``python -m repro.verify replay``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import DomainPath, Hierarchy
from ..core.idspace import IdSpace
from ..simulation.churn import Event, ScheduleReport, run_schedule
from ..simulation.protocol import SimulatedCrescendo
from .builders import FAMILIES, PREFIX_FAMILIES, build_family
from .invariants import run_checks
from .mutate import corrupt
from .oracles import DurabilityMonitor, check_durability, compare_routing
from .violations import Violation

#: Leaf domains of the fuzz hierarchy (two levels, 3 x 2).
FUZZ_PATHS: Tuple[DomainPath, ...] = tuple(
    (top, leaf) for top in ("a", "b", "c") for leaf in ("x", "y")
)

#: Event mix for schedule generation (lookups dominate, like real traffic).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "join": 0.18,
    "leave": 0.10,
    "crash": 0.07,
    "lookup": 0.60,
    "stabilize": 0.05,
}

#: Extra event mix when a data layer rides the schedule
#: (``FuzzConfig.data_replicas``); kept out of :data:`DEFAULT_WEIGHTS` so
#: schedules generated without a layer stay byte-identical to older seeds.
DATA_WEIGHTS: Dict[str, float] = {
    "put": 0.08,
    "get": 0.12,
}


@dataclass
class FuzzConfig:
    """Everything one fuzz run derives from (all replay-relevant state)."""

    seed: int = 0
    events: int = 500
    families: Sequence[str] = FAMILIES
    population: int = 64
    checkpoints: int = 8
    bits: int = 32
    mutate_family: Optional[str] = None
    mutate_kind: str = "drop"
    routing_pairs: int = 32
    #: replication degree of the data layer riding the schedule, or None
    #: for a bare network.  When set, the schedule gains ``put``/``get``
    #: events, replay attaches a
    #: :class:`~repro.perf.storage.FastDataLayer` plus a
    #: :class:`~repro.verify.oracles.DurabilityMonitor`, and every
    #: checkpoint runs :func:`~repro.verify.oracles.check_durability`.
    data_replicas: Optional[int] = None
    #: maintenance engine to replay with ("auto"/"fast"/"reference") —
    #: runtime-only, deliberately not serialized into fixtures: any fixture
    #: must replay identically under either engine.
    engine: str = "auto"


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (plus the shrunk schedule on failure)."""

    config: FuzzConfig
    schedule: List[Event]
    replay: ScheduleReport
    violations: List[Violation] = field(default_factory=list)
    shrunk: Optional[List[Event]] = None
    shrink_replays: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.violations)


# ------------------------------------------------------ schedule generation


def generate_schedule(config: FuzzConfig) -> List[Event]:
    """Derive a deterministic event list from the seed.

    All randomness is consumed *here*; the resulting events carry concrete
    ids, keys and live-list ranks, so replaying (or any sub-list of it,
    during shrinking) never touches an RNG.
    """
    rng = random.Random(f"fuzz-schedule:{config.seed}")
    space = IdSpace(config.bits)
    mix = dict(DEFAULT_WEIGHTS)
    if config.data_replicas is not None:
        mix.update(DATA_WEIGHTS)
    kinds = list(mix)
    weights = [mix[k] for k in kinds]
    used_ids = set()
    put_keys: List[int] = []
    events: List[Event] = []
    for _ in range(config.events):
        kind = rng.choices(kinds, weights)[0]
        if kind == "join":
            node = space.random_id(rng)
            while node in used_ids:
                node = space.random_id(rng)
            used_ids.add(node)
            path = FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))]
            events.append(Event("join", node=node, path=path))
        elif kind in ("leave", "crash"):
            events.append(Event(kind, rank=rng.randrange(1 << 30)))
        elif kind == "lookup":
            events.append(
                Event(
                    "lookup",
                    rank=rng.randrange(1 << 30),
                    key=space.random_id(rng),
                )
            )
        elif kind == "put":
            token = rng.randrange(1 << 30)
            put_keys.append(token)
            events.append(
                Event(
                    "put",
                    rank=rng.randrange(1 << 30),
                    key=token,
                    depth=rng.randrange(3),
                )
            )
        elif kind == "get":
            # Mostly re-read stored keys; some misses keep the path honest.
            if put_keys and rng.random() < 0.8:
                token = put_keys[rng.randrange(len(put_keys))]
            else:
                token = rng.randrange(1 << 30)
            events.append(Event("get", rank=rng.randrange(1 << 30), key=token))
        else:
            events.append(Event("stabilize"))
    # Checkpoints at evenly spaced quiescent points, plus one at the end.
    stride = max(1, len(events) // max(1, config.checkpoints))
    out: List[Event] = []
    for i, event in enumerate(events):
        out.append(event)
        if (i + 1) % stride == 0:
            out.append(Event("checkpoint"))
    if not out or out[-1].kind != "checkpoint":
        out.append(Event("checkpoint"))
    return out


def bootstrap_network(
    config: FuzzConfig, engine: Optional[str] = None
) -> SimulatedCrescendo:
    """The seed-derived initial population (fixed across shrinking).

    ``engine`` overrides ``config.engine`` (the hook
    :func:`repro.verify.oracles.compare_protocols` factories use).
    """
    from ..perf.dynamic import make_protocol

    rng = random.Random(f"fuzz-bootstrap:{config.seed}")
    space = IdSpace(config.bits)
    net = make_protocol(space, engine=engine if engine is not None else config.engine)
    for node_id in space.random_ids(config.population, rng):
        net.join(node_id, FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))])
    net.stabilize_to_convergence()
    return net


# --------------------------------------------------- protocol-state checks


def check_protocol_state(net: SimulatedCrescendo) -> List[Violation]:
    """Ring successor correctness and leaf-set symmetry at every level.

    At a quiescent point each live node's per-ring view must name the next
    live member of that ring as successor, and that successor must name
    the node back as predecessor (Zave's mutual leaf-set consistency, per
    hierarchy level).
    """
    out: List[Violation] = []
    live = {n: node for n, node in net.nodes.items() if node.alive}
    members_cache: Dict[Tuple[DomainPath, int], List[int]] = {}
    for node_id, node in live.items():
        for depth in range(node.leaf_depth + 1):
            prefix = node.path[:depth]
            key = (prefix, depth)
            members = members_cache.get(key)
            if members is None:
                members = sorted(
                    m for m, mn in live.items() if mn.path[:depth] == prefix
                )
                members_cache[key] = members
            if len(members) < 2:
                continue
            ring = node.rings[depth]
            expected = members[(members.index(node_id) + 1) % len(members)]
            if ring.successor != expected:
                out.append(
                    Violation(
                        check="protocol-successor",
                        family="protocol",
                        message=(
                            f"ring successor is {ring.successor}, "
                            f"expected {expected}"
                        ),
                        node=node_id,
                        level=depth,
                        domain=prefix,
                    )
                )
                continue
            peer_ring = live[expected].rings[depth]
            if peer_ring.predecessor != node_id:
                out.append(
                    Violation(
                        check="leafset-symmetry",
                        family="protocol",
                        message=(
                            f"successor {expected}'s predecessor is "
                            f"{peer_ring.predecessor}, not this node"
                        ),
                        node=node_id,
                        link=expected,
                        level=depth,
                        domain=prefix,
                    )
                )
    return out


# ------------------------------------------------------------ one fuzz run


def _checkpoint_verifier(
    config: FuzzConfig,
    violations: List[Violation],
    data=None,
    monitor=None,
) -> Callable[[SimulatedCrescendo, int, bool], None]:
    """The callback run at each quiescent point of the schedule."""

    def on_checkpoint(net: SimulatedCrescendo, index: int, converged: bool) -> None:
        if not converged:
            violations.append(
                Violation(
                    check="convergence",
                    family="protocol",
                    message=f"checkpoint {index}: stabilization did not converge",
                    level=index,
                )
            )
        violations.extend(check_protocol_state(net))
        if data is not None:
            violations.extend(check_durability(net, data, monitor))
        live = sorted(n for n, node in net.nodes.items() if node.alive)
        paths = [net.nodes[n].path for n in live]
        hierarchy = Hierarchy()
        for node_id, path in zip(live, paths):
            hierarchy.place(node_id, path)
        rng = random.Random(f"fuzz-checkpoint:{config.seed}:{index}")
        for family in config.families:
            static = build_family(
                family,
                net.space,
                hierarchy=None if family in PREFIX_FAMILIES else hierarchy,
                rng=rng,
                domain_paths=paths,
            )
            mutated = family == config.mutate_family
            if mutated:
                corrupt(static, rng, config.mutate_kind)
            violations.extend(run_checks(static))
            # No routing differential on a deliberately corrupted table:
            # the batch kernels (rightly) refuse to compile bogus targets.
            if not mutated and config.routing_pairs and static.size >= 2:
                ids = static.node_ids
                pairs = [
                    (ids[rng.randrange(len(ids))], ids[rng.randrange(len(ids))])
                    for _ in range(config.routing_pairs)
                ]
                violations.extend(compare_routing(static, pairs))

    return on_checkpoint


def replay(config: FuzzConfig, schedule: Sequence[Event]) -> FuzzReport:
    """Replay one schedule from the seed-derived bootstrap and verify."""
    net = bootstrap_network(config)
    data = monitor = None
    if config.data_replicas is not None:
        from ..perf.storage import FastDataLayer

        # Layer first, monitor second: the monitor's hooks must see the
        # layer's post-handoff holder state to classify losses.
        data = FastDataLayer(net, replicas=config.data_replicas)
        monitor = DurabilityMonitor(net, data)
    violations: List[Violation] = []
    report = run_schedule(
        net,
        list(schedule),
        on_checkpoint=_checkpoint_verifier(config, violations, data, monitor),
        data=data,
    )
    return FuzzReport(
        config=config,
        schedule=list(schedule),
        replay=report,
        violations=violations,
    )


def run_fuzz(config: FuzzConfig, shrink: bool = True) -> FuzzReport:
    """Generate the seed's schedule, replay it and shrink on failure."""
    report = replay(config, generate_schedule(config))
    if report.failed and shrink:
        shrunk, tries = shrink_schedule(
            report.schedule, lambda evs: replay(config, evs).failed
        )
        report.shrunk = shrunk
        report.shrink_replays = tries
    return report


# ---------------------------------------------------------------- shrinking


def shrink_schedule(
    events: Sequence[Event],
    still_failing: Callable[[Sequence[Event]], bool],
    max_replays: int = 120,
) -> Tuple[List[Event], int]:
    """Greedy delta debugging: drop chunks while the failure reproduces.

    Halving chunk sizes down to single events, repeatedly removing any
    chunk whose absence keeps ``still_failing`` true.  Bounded by
    ``max_replays`` predicate evaluations so pathological schedules cannot
    stall a nightly run; the result is 1-minimal when the budget suffices.
    """
    current = list(events)
    replays = 0
    chunk = max(1, len(current) // 2)
    while replays < max_replays:
        index = 0
        reduced = False
        while index < len(current) and replays < max_replays:
            candidate = current[:index] + current[index + chunk :]
            replays += 1
            if candidate and still_failing(candidate):
                current = candidate
                reduced = True
            else:
                index += chunk
        if chunk == 1:
            if not reduced:
                break  # 1-minimal: no single event can be removed
        else:
            chunk = max(1, chunk // 2)
    return current, replays


# ------------------------------------------------------------ serialization

#: Per event kind: (required fields, optional fields).  Everything else —
#: including fields valid for *other* kinds — is rejected, so a fixture
#: that was hand-edited into nonsense fails loudly instead of replaying
#: as something subtly different.
EVENT_FIELDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "join": (("node", "path"), ()),
    "leave": (("rank",), ()),
    "crash": (("rank",), ()),
    "lookup": (("rank", "key"), ()),
    "put": (("rank", "key"), ("depth",)),
    "get": (("rank", "key"), ()),
    "stabilize": ((), ()),
    "checkpoint": ((), ()),
    "kill_domain": (("path",), ()),
    "partition": (("path",), ()),
    "heal": ((), ("path",)),
}
assert set(EVENT_FIELDS) == set(Event.KINDS)


def event_to_dict(event: Event) -> Dict[str, object]:
    """One schedule event as a JSON-ready dict (``None`` fields omitted)."""
    return {
        "kind": event.kind,
        **({"node": event.node} if event.node is not None else {}),
        **({"path": list(event.path)} if event.path is not None else {}),
        **({"rank": event.rank} if event.rank is not None else {}),
        **({"key": event.key} if event.key is not None else {}),
        **({"depth": event.depth} if event.depth is not None else {}),
    }


def _int_field(doc: Dict, name: str, where: str) -> Optional[int]:
    value = doc.get(name)
    if value is None:
        return None
    # bool is an int subclass; a fixture saying "rank": true is malformed.
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(
            f"{where}: {name} must be a non-negative integer, got {value!r}"
        )
    return value


def _path_field(doc: Dict, where: str) -> Optional[DomainPath]:
    raw = doc.get("path")
    if raw is None:
        return None
    if not isinstance(raw, list) or not all(isinstance(c, str) for c in raw):
        raise ValueError(
            f"{where}: path must be a list of domain-name strings, got {raw!r}"
        )
    return tuple(raw)


def event_from_dict(doc: object, index: int = 0) -> Event:
    """Parse and validate one serialized event.

    Rejects unknown kinds, missing required fields, fields that do not
    belong to the kind, and ill-typed values — each with an error naming
    the event index and the offence, so a broken fixture points at its
    own defect instead of failing (or worse, passing) downstream.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"event {index}: expected an object, got {doc!r}")
    kind = doc.get("kind")
    if kind not in EVENT_FIELDS:
        raise ValueError(
            f"event {index}: unknown kind {kind!r} "
            f"(known: {', '.join(Event.KINDS)})"
        )
    where = f"event {index} ({kind})"
    required, optional = EVENT_FIELDS[kind]
    allowed = {"kind", *required, *optional}
    unexpected = sorted(set(doc) - allowed)
    if unexpected:
        raise ValueError(
            f"{where}: unexpected field(s) {', '.join(unexpected)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )
    missing = sorted(set(required) - set(doc))
    if missing:
        raise ValueError(f"{where}: missing required field(s) {', '.join(missing)}")
    return Event(
        kind=kind,
        node=_int_field(doc, "node", where),
        path=_path_field(doc, where),
        rank=_int_field(doc, "rank", where),
        key=_int_field(doc, "key", where),
        depth=_int_field(doc, "depth", where),
    )


def events_from_docs(docs: object, where: str = "fixture") -> List[Event]:
    """Parse a serialized event list, validating every entry."""
    if not isinstance(docs, list):
        raise ValueError(f"{where}: events must be a list, got {docs!r}")
    return [event_from_dict(doc, index) for index, doc in enumerate(docs)]


def schedule_to_json(config: FuzzConfig, events: Sequence[Event]) -> str:
    """A replayable counterexample document (fixture format)."""
    return json.dumps(
        {
            "seed": config.seed,
            "population": config.population,
            "bits": config.bits,
            "families": list(config.families),
            "mutate_family": config.mutate_family,
            "mutate_kind": config.mutate_kind,
            "routing_pairs": config.routing_pairs,
            **(
                {"data_replicas": config.data_replicas}
                if config.data_replicas is not None
                else {}
            ),
            "expect_violations": config.mutate_family is not None,
            "events": [event_to_dict(e) for e in events],
        },
        indent=2,
    )


def _config_int(doc: Dict, name: str, default=None, minimum: int = 0) -> Optional[int]:
    if name not in doc:
        if default is not None or name in ("mutate_family", "data_replicas"):
            return default
        raise ValueError(f"fixture: missing required key {name!r}")
    value = doc[name]
    if value is None and name == "data_replicas":
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ValueError(
            f"fixture: {name} must be an integer >= {minimum}, got {value!r}"
        )
    return value


def schedule_from_json(text: str) -> Tuple[FuzzConfig, List[Event], bool]:
    """Parse a fixture; returns (config, events, expect_violations).

    The document is fully validated — unknown event kinds, malformed
    event fields, unknown families and ill-typed config values all raise
    :class:`ValueError` with a message naming the offending entry.
    """
    from .builders import EXTRA_FAMILIES
    from .mutate import KINDS as MUTATION_KINDS

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValueError(f"fixture: not valid JSON ({err})") from err
    if not isinstance(doc, dict):
        raise ValueError(f"fixture: expected a JSON object, got {doc!r}")
    if "events" not in doc:
        raise ValueError("fixture: missing required key 'events'")
    events = events_from_docs(doc["events"])

    known_families = FAMILIES + EXTRA_FAMILIES
    families = doc.get("families")
    if families is None:
        raise ValueError("fixture: missing required key 'families'")
    if not isinstance(families, list) or not all(
        isinstance(f, str) for f in families
    ):
        raise ValueError(f"fixture: families must be a list of names, got {families!r}")
    unknown = [f for f in families if f not in known_families]
    if unknown:
        raise ValueError(
            f"fixture: unknown families {unknown} "
            f"(known: {', '.join(known_families)})"
        )
    mutate_family = doc.get("mutate_family")
    if mutate_family is not None and mutate_family not in known_families:
        raise ValueError(
            f"fixture: unknown mutate_family {mutate_family!r} "
            f"(known: {', '.join(known_families)})"
        )
    mutate_kind = doc.get("mutate_kind", "drop")
    if mutate_kind not in MUTATION_KINDS:
        raise ValueError(
            f"fixture: unknown mutate_kind {mutate_kind!r} "
            f"(known: {', '.join(MUTATION_KINDS)})"
        )
    bits = _config_int(doc, "bits", default=32, minimum=1)
    if bits > 64:
        raise ValueError(f"fixture: bits must be <= 64, got {bits}")
    config = FuzzConfig(
        seed=_config_int(doc, "seed"),
        events=len(events),
        families=tuple(families),
        population=_config_int(doc, "population", minimum=1),
        bits=bits,
        mutate_family=mutate_family,
        mutate_kind=mutate_kind,
        routing_pairs=_config_int(doc, "routing_pairs", default=32),
        data_replicas=_config_int(doc, "data_replicas", minimum=1),
    )
    return config, events, bool(doc.get("expect_violations"))
