"""Seeded churn fuzzing: generate, replay, verify, shrink.

The fuzzer derives a deterministic join/leave/crash/lookup schedule from a
seed, replays it through :func:`repro.simulation.churn.run_schedule`, and
at every quiescent checkpoint (a) checks the live protocol state — ring
successor correctness and leaf-set symmetry at every level — and (b)
rebuilds each requested static family over the current live membership
and runs the invariant registry plus a scalar-vs-batch routing
differential on it.

Failing schedules shrink toward a minimal counterexample with a greedy
delta-debugging pass over the event list; the result serializes to JSON
so counterexamples can be checked in as regression fixtures and replayed
with ``python -m repro.verify replay``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import DomainPath, Hierarchy
from ..core.idspace import IdSpace
from ..simulation.churn import Event, ScheduleReport, run_schedule
from ..simulation.protocol import SimulatedCrescendo
from .builders import FAMILIES, PREFIX_FAMILIES, build_family
from .invariants import run_checks
from .mutate import corrupt
from .oracles import DurabilityMonitor, check_durability, compare_routing
from .violations import Violation

#: Leaf domains of the fuzz hierarchy (two levels, 3 x 2).
FUZZ_PATHS: Tuple[DomainPath, ...] = tuple(
    (top, leaf) for top in ("a", "b", "c") for leaf in ("x", "y")
)

#: Event mix for schedule generation (lookups dominate, like real traffic).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "join": 0.18,
    "leave": 0.10,
    "crash": 0.07,
    "lookup": 0.60,
    "stabilize": 0.05,
}

#: Extra event mix when a data layer rides the schedule
#: (``FuzzConfig.data_replicas``); kept out of :data:`DEFAULT_WEIGHTS` so
#: schedules generated without a layer stay byte-identical to older seeds.
DATA_WEIGHTS: Dict[str, float] = {
    "put": 0.08,
    "get": 0.12,
}


@dataclass
class FuzzConfig:
    """Everything one fuzz run derives from (all replay-relevant state)."""

    seed: int = 0
    events: int = 500
    families: Sequence[str] = FAMILIES
    population: int = 64
    checkpoints: int = 8
    bits: int = 32
    mutate_family: Optional[str] = None
    mutate_kind: str = "drop"
    routing_pairs: int = 32
    #: replication degree of the data layer riding the schedule, or None
    #: for a bare network.  When set, the schedule gains ``put``/``get``
    #: events, replay attaches a
    #: :class:`~repro.perf.storage.FastDataLayer` plus a
    #: :class:`~repro.verify.oracles.DurabilityMonitor`, and every
    #: checkpoint runs :func:`~repro.verify.oracles.check_durability`.
    data_replicas: Optional[int] = None
    #: maintenance engine to replay with ("auto"/"fast"/"reference") —
    #: runtime-only, deliberately not serialized into fixtures: any fixture
    #: must replay identically under either engine.
    engine: str = "auto"


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (plus the shrunk schedule on failure)."""

    config: FuzzConfig
    schedule: List[Event]
    replay: ScheduleReport
    violations: List[Violation] = field(default_factory=list)
    shrunk: Optional[List[Event]] = None
    shrink_replays: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.violations)


# ------------------------------------------------------ schedule generation


def generate_schedule(config: FuzzConfig) -> List[Event]:
    """Derive a deterministic event list from the seed.

    All randomness is consumed *here*; the resulting events carry concrete
    ids, keys and live-list ranks, so replaying (or any sub-list of it,
    during shrinking) never touches an RNG.
    """
    rng = random.Random(f"fuzz-schedule:{config.seed}")
    space = IdSpace(config.bits)
    mix = dict(DEFAULT_WEIGHTS)
    if config.data_replicas is not None:
        mix.update(DATA_WEIGHTS)
    kinds = list(mix)
    weights = [mix[k] for k in kinds]
    used_ids = set()
    put_keys: List[int] = []
    events: List[Event] = []
    for _ in range(config.events):
        kind = rng.choices(kinds, weights)[0]
        if kind == "join":
            node = space.random_id(rng)
            while node in used_ids:
                node = space.random_id(rng)
            used_ids.add(node)
            path = FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))]
            events.append(Event("join", node=node, path=path))
        elif kind in ("leave", "crash"):
            events.append(Event(kind, rank=rng.randrange(1 << 30)))
        elif kind == "lookup":
            events.append(
                Event(
                    "lookup",
                    rank=rng.randrange(1 << 30),
                    key=space.random_id(rng),
                )
            )
        elif kind == "put":
            token = rng.randrange(1 << 30)
            put_keys.append(token)
            events.append(
                Event(
                    "put",
                    rank=rng.randrange(1 << 30),
                    key=token,
                    depth=rng.randrange(3),
                )
            )
        elif kind == "get":
            # Mostly re-read stored keys; some misses keep the path honest.
            if put_keys and rng.random() < 0.8:
                token = put_keys[rng.randrange(len(put_keys))]
            else:
                token = rng.randrange(1 << 30)
            events.append(Event("get", rank=rng.randrange(1 << 30), key=token))
        else:
            events.append(Event("stabilize"))
    # Checkpoints at evenly spaced quiescent points, plus one at the end.
    stride = max(1, len(events) // max(1, config.checkpoints))
    out: List[Event] = []
    for i, event in enumerate(events):
        out.append(event)
        if (i + 1) % stride == 0:
            out.append(Event("checkpoint"))
    if not out or out[-1].kind != "checkpoint":
        out.append(Event("checkpoint"))
    return out


def bootstrap_network(
    config: FuzzConfig, engine: Optional[str] = None
) -> SimulatedCrescendo:
    """The seed-derived initial population (fixed across shrinking).

    ``engine`` overrides ``config.engine`` (the hook
    :func:`repro.verify.oracles.compare_protocols` factories use).
    """
    from ..perf.dynamic import make_protocol

    rng = random.Random(f"fuzz-bootstrap:{config.seed}")
    space = IdSpace(config.bits)
    net = make_protocol(space, engine=engine if engine is not None else config.engine)
    for node_id in space.random_ids(config.population, rng):
        net.join(node_id, FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))])
    net.stabilize_to_convergence()
    return net


# --------------------------------------------------- protocol-state checks


def check_protocol_state(net: SimulatedCrescendo) -> List[Violation]:
    """Ring successor correctness and leaf-set symmetry at every level.

    At a quiescent point each live node's per-ring view must name the next
    live member of that ring as successor, and that successor must name
    the node back as predecessor (Zave's mutual leaf-set consistency, per
    hierarchy level).
    """
    out: List[Violation] = []
    live = {n: node for n, node in net.nodes.items() if node.alive}
    members_cache: Dict[Tuple[DomainPath, int], List[int]] = {}
    for node_id, node in live.items():
        for depth in range(node.leaf_depth + 1):
            prefix = node.path[:depth]
            key = (prefix, depth)
            members = members_cache.get(key)
            if members is None:
                members = sorted(
                    m for m, mn in live.items() if mn.path[:depth] == prefix
                )
                members_cache[key] = members
            if len(members) < 2:
                continue
            ring = node.rings[depth]
            expected = members[(members.index(node_id) + 1) % len(members)]
            if ring.successor != expected:
                out.append(
                    Violation(
                        check="protocol-successor",
                        family="protocol",
                        message=(
                            f"ring successor is {ring.successor}, "
                            f"expected {expected}"
                        ),
                        node=node_id,
                        level=depth,
                        domain=prefix,
                    )
                )
                continue
            peer_ring = live[expected].rings[depth]
            if peer_ring.predecessor != node_id:
                out.append(
                    Violation(
                        check="leafset-symmetry",
                        family="protocol",
                        message=(
                            f"successor {expected}'s predecessor is "
                            f"{peer_ring.predecessor}, not this node"
                        ),
                        node=node_id,
                        link=expected,
                        level=depth,
                        domain=prefix,
                    )
                )
    return out


# ------------------------------------------------------------ one fuzz run


def _checkpoint_verifier(
    config: FuzzConfig,
    violations: List[Violation],
    data=None,
    monitor=None,
) -> Callable[[SimulatedCrescendo, int, bool], None]:
    """The callback run at each quiescent point of the schedule."""

    def on_checkpoint(net: SimulatedCrescendo, index: int, converged: bool) -> None:
        if not converged:
            violations.append(
                Violation(
                    check="convergence",
                    family="protocol",
                    message=f"checkpoint {index}: stabilization did not converge",
                    level=index,
                )
            )
        violations.extend(check_protocol_state(net))
        if data is not None:
            violations.extend(check_durability(net, data, monitor))
        live = sorted(n for n, node in net.nodes.items() if node.alive)
        paths = [net.nodes[n].path for n in live]
        hierarchy = Hierarchy()
        for node_id, path in zip(live, paths):
            hierarchy.place(node_id, path)
        rng = random.Random(f"fuzz-checkpoint:{config.seed}:{index}")
        for family in config.families:
            static = build_family(
                family,
                net.space,
                hierarchy=None if family in PREFIX_FAMILIES else hierarchy,
                rng=rng,
                domain_paths=paths,
            )
            mutated = family == config.mutate_family
            if mutated:
                corrupt(static, rng, config.mutate_kind)
            violations.extend(run_checks(static))
            # No routing differential on a deliberately corrupted table:
            # the batch kernels (rightly) refuse to compile bogus targets.
            if not mutated and config.routing_pairs and static.size >= 2:
                ids = static.node_ids
                pairs = [
                    (ids[rng.randrange(len(ids))], ids[rng.randrange(len(ids))])
                    for _ in range(config.routing_pairs)
                ]
                violations.extend(compare_routing(static, pairs))

    return on_checkpoint


def replay(config: FuzzConfig, schedule: Sequence[Event]) -> FuzzReport:
    """Replay one schedule from the seed-derived bootstrap and verify."""
    net = bootstrap_network(config)
    data = monitor = None
    if config.data_replicas is not None:
        from ..perf.storage import FastDataLayer

        # Layer first, monitor second: the monitor's hooks must see the
        # layer's post-handoff holder state to classify losses.
        data = FastDataLayer(net, replicas=config.data_replicas)
        monitor = DurabilityMonitor(net, data)
    violations: List[Violation] = []
    report = run_schedule(
        net,
        list(schedule),
        on_checkpoint=_checkpoint_verifier(config, violations, data, monitor),
        data=data,
    )
    return FuzzReport(
        config=config,
        schedule=list(schedule),
        replay=report,
        violations=violations,
    )


def run_fuzz(config: FuzzConfig, shrink: bool = True) -> FuzzReport:
    """Generate the seed's schedule, replay it and shrink on failure."""
    report = replay(config, generate_schedule(config))
    if report.failed and shrink:
        shrunk, tries = shrink_schedule(
            report.schedule, lambda evs: replay(config, evs).failed
        )
        report.shrunk = shrunk
        report.shrink_replays = tries
    return report


# ---------------------------------------------------------------- shrinking


def shrink_schedule(
    events: Sequence[Event],
    still_failing: Callable[[Sequence[Event]], bool],
    max_replays: int = 120,
) -> Tuple[List[Event], int]:
    """Greedy delta debugging: drop chunks while the failure reproduces.

    Halving chunk sizes down to single events, repeatedly removing any
    chunk whose absence keeps ``still_failing`` true.  Bounded by
    ``max_replays`` predicate evaluations so pathological schedules cannot
    stall a nightly run; the result is 1-minimal when the budget suffices.
    """
    current = list(events)
    replays = 0
    chunk = max(1, len(current) // 2)
    while replays < max_replays:
        index = 0
        reduced = False
        while index < len(current) and replays < max_replays:
            candidate = current[:index] + current[index + chunk :]
            replays += 1
            if candidate and still_failing(candidate):
                current = candidate
                reduced = True
            else:
                index += chunk
        if chunk == 1:
            if not reduced:
                break  # 1-minimal: no single event can be removed
        else:
            chunk = max(1, chunk // 2)
    return current, replays


# ------------------------------------------------------------ serialization


def schedule_to_json(config: FuzzConfig, events: Sequence[Event]) -> str:
    """A replayable counterexample document (fixture format)."""
    return json.dumps(
        {
            "seed": config.seed,
            "population": config.population,
            "bits": config.bits,
            "families": list(config.families),
            "mutate_family": config.mutate_family,
            "mutate_kind": config.mutate_kind,
            "routing_pairs": config.routing_pairs,
            **(
                {"data_replicas": config.data_replicas}
                if config.data_replicas is not None
                else {}
            ),
            "expect_violations": config.mutate_family is not None,
            "events": [
                {
                    "kind": e.kind,
                    **({"node": e.node} if e.node is not None else {}),
                    **({"path": list(e.path)} if e.path is not None else {}),
                    **({"rank": e.rank} if e.rank is not None else {}),
                    **({"key": e.key} if e.key is not None else {}),
                    **({"depth": e.depth} if e.depth is not None else {}),
                }
                for e in events
            ],
        },
        indent=2,
    )


def schedule_from_json(text: str) -> Tuple[FuzzConfig, List[Event], bool]:
    """Parse a fixture; returns (config, events, expect_violations)."""
    doc = json.loads(text)
    config = FuzzConfig(
        seed=doc["seed"],
        events=len(doc["events"]),
        families=tuple(doc["families"]),
        population=doc["population"],
        bits=doc.get("bits", 32),
        mutate_family=doc.get("mutate_family"),
        mutate_kind=doc.get("mutate_kind", "drop"),
        routing_pairs=doc.get("routing_pairs", 32),
        data_replicas=doc.get("data_replicas"),
    )
    events = [
        Event(
            kind=e["kind"],
            node=e.get("node"),
            path=tuple(e["path"]) if "path" in e else None,
            rank=e.get("rank"),
            key=e.get("key"),
            depth=e.get("depth"),
        )
        for e in doc["events"]
    ]
    return config, events, bool(doc.get("expect_violations"))
