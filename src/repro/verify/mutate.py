"""Mutation smoke: corrupt one table entry, assert the checkers notice.

A verification subsystem that never fires is indistinguishable from one
that works; this module injects a known single-link corruption into a
built network — chosen per family so at least one registered invariant is
guaranteed to cover it — and checks the registry reports it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.idspace import successor_index
from ..core.network import DHTNetwork
from .builders import FAMILIES, small_network
from .invariants import run_checks

#: Corruption flavours: ``drop`` removes a structurally required link,
#: ``self`` inserts a self-link, ``unknown`` retargets a link to an id
#: outside the network.  ``self``/``unknown`` exercise ``links-valid``;
#: ``drop`` exercises the per-family structural checkers.
KINDS = ("drop", "self", "unknown")


def _invalidate_compiled(network: DHTNetwork) -> None:
    network.__dict__.pop("_perf_compiled", None)


def _drop_link(network: DHTNetwork, rng: random.Random) -> str:
    """Remove one link a per-family invariant is guaranteed to require.

    Ring families lose a ring-successor link (flat or global-level); XOR
    and hypercube families lose an arbitrary link, which with single-slot
    buckets / one-edge-per-bit construction always uncovers its bucket or
    bit (flat CAN's all-pairs adjacency makes any removal detectable too).
    """
    family = getattr(network, "family", "network")
    ids = network.node_ids
    space = network.space
    if network.metric == "ring":
        # Pick a node whose global ring successor is present, drop that link.
        candidates = list(ids)
        rng.shuffle(candidates)
        for node in candidates:
            pos = ids.index(node)
            succ = ids[(pos + 1) % len(ids)]
            if succ != node and succ in network.links[node]:
                network.links[node].remove(succ)
                _invalidate_compiled(network)
                return f"dropped {family} node {node}'s ring-successor link {succ}"
        raise RuntimeError(f"no droppable successor link found in {family}")
    candidates = [n for n in ids if network.links[n]]
    node = rng.choice(candidates)
    link = rng.choice(network.links[node])
    network.links[node].remove(link)
    _invalidate_compiled(network)
    return f"dropped {family} node {node}'s link {link}"


def _self_link(network: DHTNetwork, rng: random.Random) -> str:
    node = rng.choice(network.node_ids)
    links = network.links[node]
    links.insert(successor_index(links, node) if links else 0, node)
    network.links[node] = sorted(links)
    _invalidate_compiled(network)
    return f"inserted self-link at node {node}"


def _unknown_target(network: DHTNetwork, rng: random.Random) -> str:
    candidates = [n for n in network.node_ids if network.links[n]]
    node = rng.choice(candidates)
    bogus = network.space.size  # one past the id space: never a member
    network.links[node] = sorted(network.links[node][1:] + [bogus])
    _invalidate_compiled(network)
    return f"retargeted one of node {node}'s links to unknown id {bogus}"


def corrupt(
    network: DHTNetwork, rng: random.Random, kind: str = "drop"
) -> str:
    """Apply one seeded corruption; returns a description of what broke."""
    if kind == "drop":
        return _drop_link(network, rng)
    if kind == "self":
        return _self_link(network, rng)
    if kind == "unknown":
        return _unknown_target(network, rng)
    raise ValueError(f"unknown corruption kind {kind!r}; pick one of {KINDS}")


def mutation_smoke(
    families: Sequence[str] = FAMILIES,
    seed: int = 0,
    kinds: Sequence[str] = KINDS,
    size: int = 120,
) -> Dict[str, Dict[str, List[str]]]:
    """Corrupt each family every way; map family -> kind -> detecting checks.

    Raises :class:`AssertionError` if any corruption goes undetected — the
    smoke that keeps the checker registry honest.
    """
    report: Dict[str, Dict[str, List[str]]] = {}
    for family in families:
        report[family] = {}
        for kind in kinds:
            net = small_network(family, seed=seed, size=size)
            rng = random.Random(f"mutate:{family}:{kind}:{seed}")
            description = corrupt(net, rng, kind)
            caught = sorted({v.check for v in run_checks(net)})
            if not caught:
                raise AssertionError(
                    f"undetected corruption ({description}): no registered "
                    f"checker for family {family!r} fired"
                )
            report[family][kind] = caught
    return report
