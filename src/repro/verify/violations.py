"""Structured violation records shared by every verification layer.

A :class:`Violation` pinpoints *where* an invariant broke — the node, the
hierarchy level, the domain, the offending link — so a failure in a
10^4-node build or a 2000-event churn schedule is actionable without
re-running under a debugger.  Checkers yield violations instead of
asserting; callers decide whether to collect, count or raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Violation:
    """One broken invariant instance.

    ``check`` names the registered checker (e.g. ``ring-successor``),
    ``family`` the network family it ran against.  ``node``, ``level``,
    ``domain`` and ``link`` localise the failure where applicable:
    ``level`` is a hierarchy depth for ring checks and a bucket/bit index
    for XOR and hypercube checks.
    """

    check: str
    family: str
    message: str
    node: Optional[int] = None
    level: Optional[int] = None
    domain: Optional[Tuple[str, ...]] = None
    link: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.link is not None:
            where.append(f"link={self.link}")
        if self.level is not None:
            where.append(f"level={self.level}")
        if self.domain is not None:
            where.append(f"domain={'.'.join(self.domain) or '<root>'}")
        loc = f" [{' '.join(where)}]" if where else ""
        return f"{self.check}({self.family}){loc}: {self.message}"


class InvariantViolationError(AssertionError):
    """Raised by :func:`repro.verify.verify_network` on any violation.

    Subclasses :class:`AssertionError` so test harnesses treat it as a
    failed assertion; carries the full violation list for reporting.
    """

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = list(violations)
        head = "\n".join(f"  {v}" for v in self.violations[:10])
        extra = len(self.violations) - 10
        tail = f"\n  ... and {extra} more" if extra > 0 else ""
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n{head}{tail}"
        )


def summarize(violations: List[Violation]) -> str:
    """A per-check count table, the fuzz CLI's violations summary."""
    counts: dict = {}
    for v in violations:
        counts[(v.check, v.family)] = counts.get((v.check, v.family), 0) + 1
    if not counts:
        return "no violations"
    lines = [
        f"  {check}({family}): {n}"
        for (check, family), n in sorted(counts.items())
    ]
    return "\n".join([f"{len(violations)} violation(s):"] + lines)
