"""One place that knows how to build every DHT family for verification.

The invariant fuzzer and the mutation smoke both need "a built network of
family X over this membership"; this module centralises that dispatch so
adding a family means touching one table (plus registering its checkers in
:mod:`repro.verify.invariants`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import Hierarchy, build_uniform_hierarchy
from ..core.idspace import IdSpace
from ..core.network import DHTNetwork
from ..dhts.cacophony import CacophonyNetwork
from ..dhts.can import build_can
from ..dhts.cancan import build_cancan
from ..dhts.chord import ChordNetwork
from ..dhts.crescendo import CrescendoNetwork
from ..dhts.kademlia import KademliaNetwork
from ..dhts.kandy import KandyNetwork
from ..dhts.mixed import LanCrescendoNetwork
from ..dhts.naive import NaiveHierarchicalChord
from ..dhts.ndchord import NDChordNetwork, NDCrescendoNetwork
from ..dhts.symphony import SymphonyNetwork

#: The paper's ten constructions (five flat families and their Canon
#: versions), the default target set for ``python -m repro.verify fuzz``.
FAMILIES: Tuple[str, ...] = (
    "chord",
    "crescendo",
    "symphony",
    "cacophony",
    "ndchord",
    "ndcrescendo",
    "kademlia",
    "kandy",
    "can",
    "cancan",
)

#: Additional checkable constructions outside the headline ten.
EXTRA_FAMILIES: Tuple[str, ...] = ("naive", "mixed")

#: Families whose nodes are zone prefixes rather than hierarchy members —
#: built from a member *count* plus domain placements, not from ids.
PREFIX_FAMILIES = ("can", "cancan")


def build_family(
    family: str,
    space: IdSpace,
    hierarchy: Optional[Hierarchy] = None,
    rng: Optional[random.Random] = None,
    domain_paths: Optional[Sequence[Tuple[str, ...]]] = None,
) -> DHTNetwork:
    """Build one family over an explicit membership.

    Ring/XOR families build over ``hierarchy``; the prefix families (CAN,
    Can-Can) allocate fresh zone identifiers and only take the membership's
    *size and domain placements* from ``domain_paths``.
    """
    rng = rng if rng is not None else random.Random(0)
    if family in PREFIX_FAMILIES:
        if not domain_paths:
            raise ValueError(f"{family} needs domain_paths (one per node)")
        if family == "can":
            return build_can(space, len(domain_paths), rng)
        return build_cancan(space, len(domain_paths), rng, list(domain_paths))
    if hierarchy is None:
        raise ValueError(f"{family} needs a hierarchy")
    if family == "chord":
        return ChordNetwork(space, hierarchy).build()
    if family == "crescendo":
        return CrescendoNetwork(space, hierarchy).build()
    if family == "symphony":
        return SymphonyNetwork(space, hierarchy, rng).build()
    if family == "cacophony":
        return CacophonyNetwork(space, hierarchy, rng).build()
    if family == "ndchord":
        return NDChordNetwork(space, hierarchy, rng).build()
    if family == "ndcrescendo":
        return NDCrescendoNetwork(space, hierarchy, rng).build()
    if family == "kademlia":
        return KademliaNetwork(space, hierarchy, rng, bucket_size=1).build()
    if family == "kandy":
        return KandyNetwork(space, hierarchy, rng, bucket_size=1).build()
    if family == "naive":
        return NaiveHierarchicalChord(space, hierarchy).build()
    if family == "mixed":
        return LanCrescendoNetwork(space, hierarchy).build()
    raise ValueError(f"unknown family {family!r}; known: {FAMILIES + EXTRA_FAMILIES}")


def small_network(
    family: str,
    seed: int = 0,
    size: int = 120,
    bits: int = 32,
    levels: int = 2,
    fanout: int = 4,
) -> DHTNetwork:
    """A modest standalone instance for smoke tests and the ``check`` CLI."""
    rng = random.Random(f"verify:{family}:{seed}")
    space = IdSpace(bits)
    if family in PREFIX_FAMILIES:
        paths = [(f"d{i % fanout}",) for i in range(size)]
        return build_family(family, space, rng=rng, domain_paths=paths)
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, fanout, levels, rng)
    return build_family(family, space, hierarchy=hierarchy, rng=rng)
