"""Per-family structural invariant checkers in a single registry.

Every checker takes a built :class:`~repro.core.network.DHTNetwork` and
yields :class:`~repro.verify.violations.Violation` records.  Checkers are
registered against the ``family`` tags declared by the network classes, so
:func:`run_checks` picks the applicable set automatically; ``"*"`` applies
to every family.

The checks encode the constructions' defining properties:

- ring families link their ring successor (per ancestor level for the
  Canon versions — greedy clockwise routing's progress guarantee);
- Chord/Crescendo/LanCrescendo finger tables are recomputed exactly from
  the Canon merge rule — condition (a): each merge link is the closest
  union-ring node at least ``2**k`` away, and condition (b): it is closer
  than every node of the node's own lower ring;
- Kademlia/Kandy cover every globally non-empty XOR bucket, Kandy from the
  lowest enclosing domain with a non-empty bucket;
- CAN/Can-Can zones exactly tile the identifier space and every identifier
  bit of a zone prefix is covered by a hypercube edge.

When a :mod:`repro.obs.metrics` registry is active, ``verify.checks`` and
``verify.violations`` count checker runs and findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.hierarchy import lca_depth
from ..core.idspace import predecessor_index, successor_index
from ..core.network import DHTNetwork
from ..dhts.chord import finger_links
from ..dhts.kademlia import bucket_members_range
from ..obs import metrics as obs_metrics
from .violations import InvariantViolationError, Violation

CheckFn = Callable[[DHTNetwork], Iterator[Violation]]


@dataclass(frozen=True)
class Checker:
    name: str
    families: object  # tuple of family tags, or "*" for every family
    fn: CheckFn

    def applies_to(self, family: str) -> bool:
        """Whether this checker covers the given family tag."""
        return self.families == "*" or family in self.families


_CHECKERS: List[Checker] = []


def register(name: str, families) -> Callable[[CheckFn], CheckFn]:
    """Class decorator-style registration of one invariant checker."""

    def deco(fn: CheckFn) -> CheckFn:
        _CHECKERS.append(Checker(name, families, fn))
        return fn

    return deco


def all_checkers() -> List[Checker]:
    """Every registered checker, in registration order."""
    return list(_CHECKERS)


def checkers_for(family: str) -> List[Checker]:
    """The registered checkers applicable to one family tag."""
    return [c for c in _CHECKERS if c.applies_to(family)]


def run_checks(
    network: DHTNetwork,
    checks: Optional[Sequence[str]] = None,
    fail_fast: bool = False,
) -> List[Violation]:
    """Run every applicable checker; return all violations found.

    ``checks`` restricts to a subset of checker names; ``fail_fast`` stops
    at the first violation.  Increments ``verify.checks`` per checker run
    and ``verify.violations`` per finding when metrics are collecting.
    """
    family = getattr(network, "family", "network")
    registry = obs_metrics.active_registry()
    out: List[Violation] = []
    for checker in checkers_for(family):
        if checks is not None and checker.name not in checks:
            continue
        if registry is not None:
            registry.counter("verify.checks").inc()
        for violation in checker.fn(network):
            out.append(violation)
            if registry is not None:
                registry.counter("verify.violations").inc()
            if fail_fast:
                return out
    return out


def verify_network(
    network: DHTNetwork, checks: Optional[Sequence[str]] = None
) -> None:
    """Raise :class:`InvariantViolationError` if any check fails."""
    violations = run_checks(network, checks=checks)
    if violations:
        raise InvariantViolationError(violations)


# ------------------------------------------------------------- auto-verify

_AUTO_VERIFY = False


def set_auto_verify(enabled: bool) -> None:
    """Toggle post-build verification inside the experiment helpers."""
    global _AUTO_VERIFY
    _AUTO_VERIFY = bool(enabled)


def auto_verify_enabled() -> bool:
    """Whether :func:`maybe_verify` currently verifies."""
    return _AUTO_VERIFY


def maybe_verify(network: DHTNetwork) -> None:
    """Verify ``network`` when auto-verification is on (CLI ``--verify``)."""
    if _AUTO_VERIFY:
        verify_network(network)


# ----------------------------------------------------------------- helpers


def _v(check: str, network: DHTNetwork, message: str, **kw) -> Violation:
    return Violation(
        check=check,
        family=getattr(network, "family", "network"),
        message=message,
        **kw,
    )


def _cyclic_successor(members: Sequence[int], node: int, space) -> int:
    """The next member clockwise after ``node`` (``node`` itself if alone)."""
    return members[successor_index(members, space.add(node, 1))]


def _succ_distance(members: Sequence[int], node: int, space) -> int:
    """Clockwise distance to the next member; the full ring size if alone."""
    succ = _cyclic_successor(members, node, space)
    return space.ring_distance(node, succ) if succ != node else space.size


def _ancestor_rings(network: DHTNetwork, node: int):
    """(depth, domain path, sorted members) from the leaf ring to the root."""
    for path in network.hierarchy.ancestor_chain(node):
        yield len(path), path, network.hierarchy.sorted_members(path)


# ----------------------------------------------------- generic link hygiene


@register("links-valid", "*")
def check_links_valid(network: DHTNetwork) -> Iterator[Violation]:
    """Link targets exist, no self-links, lists strictly sorted."""
    for node, link, reason in network.iter_link_violations():
        yield _v("links-valid", network, reason, node=node, link=link)


# ------------------------------------------------------------ ring closure

_FLAT_RING = ("chord", "symphony", "ndchord")
_CANON_RING = ("crescendo", "cacophony", "ndcrescendo", "mixed", "naive")


@register("ring-successor", _FLAT_RING)
def check_ring_successor(network: DHTNetwork) -> Iterator[Violation]:
    """Every node links its global ring successor (greedy progress)."""
    ids = network.node_ids
    if len(ids) < 2:
        return
    space = network.space
    for pos, node in enumerate(ids):
        succ = ids[(pos + 1) % len(ids)]
        if succ not in network.links[node]:
            yield _v(
                "ring-successor",
                network,
                f"missing ring successor {succ}",
                node=node,
                link=succ,
                level=0,
            )


@register("ring-level-successor", _CANON_RING)
def check_ring_level_successor(network: DHTNetwork) -> Iterator[Violation]:
    """Every node links its ring successor at *each* ancestor level."""
    space = network.space
    for node in network.node_ids:
        links = network.links[node]
        for depth, path, members in _ancestor_rings(network, node):
            if len(members) < 2:
                continue
            succ = _cyclic_successor(members, node, space)
            if succ not in links:
                yield _v(
                    "ring-level-successor",
                    network,
                    f"missing level-{depth} ring successor {succ}",
                    node=node,
                    link=succ,
                    level=depth,
                    domain=path,
                )


# ---------------------------------------------------------- finger tables


@register("chord-fingers", ("chord",))
def check_chord_fingers(network: DHTNetwork) -> Iterator[Violation]:
    """The link table is exactly the Chord finger definition."""
    ids = network.node_ids
    for node in ids:
        expected = finger_links(node, ids, network.space)
        actual = set(network.links[node])
        for missing in sorted(expected - actual):
            yield _v(
                "chord-fingers",
                network,
                f"missing finger {missing}",
                node=node,
                link=missing,
            )
        for extra in sorted(actual - expected):
            yield _v(
                "chord-fingers",
                network,
                f"link {extra} is not the closest node >= 2**k away for any k",
                node=node,
                link=extra,
            )


@register("naive-fingers", ("naive",))
def check_naive_fingers(network: DHTNetwork) -> Iterator[Violation]:
    """Full Chord fingers at every hierarchy level, nothing else."""
    space = network.space
    for node in network.node_ids:
        expected: Set[int] = set()
        for depth, path, members in _ancestor_rings(network, node):
            if len(members) >= 2:
                expected |= finger_links(node, members, space)
        actual = set(network.links[node])
        for missing in sorted(expected - actual):
            yield _v(
                "naive-fingers",
                network,
                f"missing per-level finger {missing}",
                node=node,
                link=missing,
            )
        for extra in sorted(actual - expected):
            yield _v(
                "naive-fingers",
                network,
                f"link {extra} is not a finger at any level",
                node=node,
                link=extra,
            )


# ------------------------------------------------------- Canon merge rules


def _expected_canon_links(network: DHTNetwork, node: int, leaf_lan: bool) -> Set[int]:
    """Recompute a Crescendo/LanCrescendo node's links from the merge rule.

    Leaf ring: full Chord fingers within the leaf domain (or the complete
    LAN graph for the mixed network).  Each merge, from the leaf's parent
    up to the root, adds union-ring fingers strictly inside the node's
    own-ring gap (Canon conditions (a) + (b)); the gap then becomes the
    successor distance in the merged ring.
    """
    space = network.space
    hierarchy = network.hierarchy
    chain = hierarchy.ancestor_chain(node)  # leaf domain first
    leaf_members = hierarchy.sorted_members(chain[0])
    expected: Set[int] = set()
    if leaf_lan:
        expected.update(m for m in leaf_members if m != node)
    else:
        expected |= finger_links(node, leaf_members, space)
    gap = _succ_distance(leaf_members, node, space)
    for path in chain[1:]:
        members = hierarchy.sorted_members(path)
        k = 0
        while (1 << k) < gap and k < space.bits:
            target = space.add(node, 1 << k)
            succ = members[successor_index(members, target)]
            if succ != node and space.ring_distance(node, succ) < gap:
                expected.add(succ)
            k += 1
        gap = _succ_distance(members, node, space)
    return expected


def _check_canon_merge(network: DHTNetwork, leaf_lan: bool) -> Iterator[Violation]:
    hierarchy = network.hierarchy
    for node in network.node_ids:
        expected = _expected_canon_links(network, node, leaf_lan)
        actual = set(network.links[node])
        path = hierarchy.path_of(node)
        for missing in sorted(expected - actual):
            yield _v(
                "canon-merge",
                network,
                f"missing merge link {missing} required by condition (a)",
                node=node,
                link=missing,
                level=lca_depth(path, hierarchy.path_of(missing)),
            )
        for extra in sorted(actual - expected):
            if extra == node or extra not in network:
                continue  # links-valid reports self/foreign targets
            level = lca_depth(path, hierarchy.path_of(extra))
            yield _v(
                "canon-merge",
                network,
                f"link {extra} violates the merge rule "
                f"(not a condition (a)+(b) finger at its level)",
                node=node,
                link=extra,
                level=level,
            )


@register("canon-merge", ("crescendo",))
def check_crescendo_merge(network: DHTNetwork) -> Iterator[Violation]:
    """Crescendo tables equal the Canon merge recomputation exactly."""
    return _check_canon_merge(network, leaf_lan=False)


@register("canon-merge", ("mixed",))
def check_lan_crescendo_merge(network: DHTNetwork) -> Iterator[Violation]:
    """LanCrescendo: complete LAN leaves + exact Canon merges above."""
    return _check_canon_merge(network, leaf_lan=True)


@register("canon-condition-b", ("crescendo", "cacophony", "ndcrescendo", "mixed"))
def check_canon_condition_b(network: DHTNetwork) -> Iterator[Violation]:
    """Condition (b): merge links are closer than any own-ring node.

    For every link whose LCA level ``l`` is above the node's leaf domain,
    the clockwise distance must be strictly smaller than the node's
    successor distance within its depth-``l+1`` ancestor domain — the
    economy that distinguishes Canon constructions from the naive one.
    """
    space = network.space
    hierarchy = network.hierarchy
    for node in network.node_ids:
        path = hierarchy.path_of(node)
        leaf_depth = len(path)
        for link in network.links[node]:
            if link == node or link not in network:
                continue  # links-valid reports self/foreign targets
            level = lca_depth(path, hierarchy.path_of(link))
            if level >= leaf_depth:
                continue  # same leaf domain: no lower ring to bound it
            own_ring = hierarchy.sorted_members(path[: level + 1])
            bound = _succ_distance(own_ring, node, space)
            dist = space.ring_distance(node, link)
            if dist >= bound:
                yield _v(
                    "canon-condition-b",
                    network,
                    f"merge link {link} at distance {dist} is not closer "
                    f"than the own-ring successor (distance {bound})",
                    node=node,
                    link=link,
                    level=level,
                    domain=path[:level],
                )


@register("canon-condition-a", ("crescendo", "mixed"))
def check_canon_condition_a(network: DHTNetwork) -> Iterator[Violation]:
    """Condition (a): each merge link is the closest union-ring node >= 2**k.

    Equivalently: with ``p`` the link's cyclic predecessor among the merged
    ring's members, some power of two lands in ``(dist(p), dist(link)]``.
    """
    space = network.space
    hierarchy = network.hierarchy
    for node in network.node_ids:
        path = hierarchy.path_of(node)
        leaf_depth = len(path)
        for link in network.links[node]:
            if link == node or link not in network:
                continue  # links-valid reports self/foreign targets
            level = lca_depth(path, hierarchy.path_of(link))
            if level >= leaf_depth:
                continue
            members = hierarchy.sorted_members(path[:level])
            dist = space.ring_distance(node, link)
            pred = members[predecessor_index(members, space.add(link, -1))]
            pdist = space.ring_distance(node, pred)
            # The largest 2**k <= dist must clear the predecessor, else no
            # finger target node + 2**k selects this link.
            if not (1 << (dist.bit_length() - 1)) > pdist:
                yield _v(
                    "canon-condition-a",
                    network,
                    f"link {link} (distance {dist}) is not the successor of "
                    f"node + 2**k for any k (predecessor at distance {pdist})",
                    node=node,
                    link=link,
                    level=level,
                    domain=path[:level],
                )


# -------------------------------------------------------- XOR bucket rules


def _bucket_of(space, node: int, link: int) -> int:
    return space.xor_distance(node, link).bit_length() - 1


@register("bucket-coverage", ("kademlia", "kandy"))
def check_bucket_coverage(network: DHTNetwork) -> Iterator[Violation]:
    """Every globally non-empty XOR bucket holds at least one contact."""
    space = network.space
    ids = network.node_ids
    for node in ids:
        covered = {
            _bucket_of(space, node, link)
            for link in network.links[node]
            if link != node and link in network
        }
        for k in range(space.bits):
            if k in covered:
                continue
            i, j = bucket_members_range(node, k, ids, space)
            if j > i:
                yield _v(
                    "bucket-coverage",
                    network,
                    f"bucket {k} has {j - i} member(s) but no contact",
                    node=node,
                    level=k,
                )


@register("kandy-lowest-domain", ("kandy",))
def check_kandy_lowest_domain(network: DHTNetwork) -> Iterator[Violation]:
    """Each contact comes from the lowest domain with a non-empty bucket."""
    space = network.space
    hierarchy = network.hierarchy
    for node in network.node_ids:
        chain = hierarchy.ancestor_chain(node)  # leaf domain first
        for link in network.links[node]:
            if link == node or link not in network:
                continue  # links-valid reports self/foreign targets
            k = _bucket_of(space, node, link)
            for path in chain:
                members = hierarchy.sorted_members(path)
                i, j = bucket_members_range(node, k, members, space)
                if i == j:
                    continue
                if hierarchy.path_of(link)[: len(path)] != path:
                    yield _v(
                        "kandy-lowest-domain",
                        network,
                        f"bucket-{k} contact {link} lies outside the lowest "
                        f"enclosing domain with a non-empty bucket",
                        node=node,
                        link=link,
                        level=len(path),
                        domain=path,
                    )
                break


# -------------------------------------------------------- CAN zone algebra


@register("can-partition", ("can", "cancan"))
def check_can_partition(network: DHTNetwork) -> Iterator[Violation]:
    """Zone prefixes exactly tile the identifier space, ids are padded."""
    bits = network.space.bits
    prefixes = network.prefixes
    cursor = 0
    for node in network.node_ids:  # sorted ascending == interval order
        prefix = prefixes[node]
        lo, hi = prefix.interval(bits)
        if node != prefix.padded(bits):
            yield _v(
                "can-partition",
                network,
                f"node id is not the padded value of its prefix {prefix}",
                node=node,
            )
        if lo != cursor:
            kind = "overlaps" if lo < cursor else "leaves a gap before"
            yield _v(
                "can-partition",
                network,
                f"zone [{lo}, {hi}) {kind} offset {cursor}",
                node=node,
            )
        cursor = max(cursor, hi)
    if cursor != network.space.size:
        yield _v(
            "can-partition",
            network,
            f"zones cover [0, {cursor}) of [0, {network.space.size})",
        )


@register("can-links", ("can", "cancan"))
def check_can_links(network: DHTNetwork) -> Iterator[Violation]:
    """Links are hypercube edges; every prefix bit has a covering edge."""
    from ..dhts.cancan import differing_bit

    prefixes = network.prefixes
    for node in network.node_ids:
        prefix = prefixes[node]
        covered: Set[int] = set()
        for link in network.links[node]:
            if link not in prefixes:
                continue  # links-valid reports foreign targets
            bit = differing_bit(prefix, prefixes[link])
            if bit is None:
                yield _v(
                    "can-links",
                    network,
                    f"link {link} is not hypercube-adjacent",
                    node=node,
                    link=link,
                )
            else:
                covered.add(bit)
        for bit in range(prefix.length):
            if bit not in covered:
                yield _v(
                    "can-links",
                    network,
                    f"no edge covers identifier bit {bit}",
                    node=node,
                    level=bit,
                )


@register("can-adjacency-complete", ("can",))
def check_can_adjacency_complete(network: DHTNetwork) -> Iterator[Violation]:
    """Flat CAN links *all* adjacent zones (ground-truth hypercube)."""
    from ..dhts.can import are_adjacent

    ids = network.node_ids
    prefixes = network.prefixes
    for i, a in enumerate(ids):
        pa = prefixes[a]
        links_a = set(network.links[a])
        for b in ids[i + 1 :]:
            if are_adjacent(pa, prefixes[b]):
                if b not in links_a:
                    yield _v(
                        "can-adjacency-complete",
                        network,
                        f"adjacent zone {b} is not linked",
                        node=a,
                        link=b,
                    )
                if a not in network.links[b]:
                    yield _v(
                        "can-adjacency-complete",
                        network,
                        f"adjacent zone {a} is not linked",
                        node=b,
                        link=a,
                    )


# ------------------------------------------------------------- LAN leaves


@register("lan-complete", ("mixed",))
def check_lan_complete(network: DHTNetwork) -> Iterator[Violation]:
    """Leaf domains form complete graphs (one-hop LAN routing)."""
    hierarchy = network.hierarchy
    for domain in hierarchy.leaf_domains():
        members = hierarchy.sorted_members(domain.path)
        member_set = set(members)
        for node in members:
            # Only nodes whose *leaf* domain this is participate in the LAN.
            if hierarchy.path_of(node) != domain.path:
                continue
            missing = member_set - set(network.links[node]) - {node}
            for peer in sorted(missing):
                if hierarchy.path_of(peer) != domain.path:
                    continue
                yield _v(
                    "lan-complete",
                    network,
                    f"LAN peer {peer} is not linked",
                    node=node,
                    link=peer,
                    level=domain.depth,
                    domain=domain.path,
                )
