"""repro.verify — the correctness harness for every DHT construction.

Three layers, designed to be called from tests, CLIs and each other:

- :mod:`~repro.verify.invariants`: per-family structural checkers in a
  single registry (:func:`run_checks` / :func:`verify_network`).
- :mod:`~repro.verify.oracles`: differential oracles comparing reference
  vs. bulk builders, scalar vs. batch routing, scalar vs. vectorized
  storage, plus the data-layer durability oracle.
- :mod:`~repro.verify.fuzz`: a deterministic, seed-driven churn fuzzer
  that verifies at every quiescent point and shrinks failing schedules;
  :mod:`~repro.verify.mutate` keeps the checkers honest by corrupting
  tables and asserting detection.

CLI: ``python -m repro.verify fuzz --seed 7 --events 2000``.
"""

from .builders import EXTRA_FAMILIES, FAMILIES, build_family, small_network
from .fuzz import (
    FuzzConfig,
    FuzzReport,
    generate_schedule,
    replay,
    run_fuzz,
    schedule_from_json,
    schedule_to_json,
    shrink_schedule,
)
from .invariants import (
    all_checkers,
    checkers_for,
    maybe_verify,
    register,
    run_checks,
    set_auto_verify,
    verify_network,
)
from .mutate import corrupt, mutation_smoke
from .oracles import (
    BuildComparison,
    DurabilityMonitor,
    check_durability,
    compare_builders,
    compare_routing,
    compare_storage,
    storage_workload,
)
from .violations import InvariantViolationError, Violation, summarize

__all__ = [
    "BuildComparison",
    "DurabilityMonitor",
    "EXTRA_FAMILIES",
    "FAMILIES",
    "FuzzConfig",
    "FuzzReport",
    "InvariantViolationError",
    "Violation",
    "all_checkers",
    "build_family",
    "check_durability",
    "checkers_for",
    "compare_builders",
    "compare_routing",
    "compare_storage",
    "corrupt",
    "generate_schedule",
    "maybe_verify",
    "mutation_smoke",
    "register",
    "replay",
    "run_checks",
    "run_fuzz",
    "schedule_from_json",
    "schedule_to_json",
    "set_auto_verify",
    "shrink_schedule",
    "small_network",
    "storage_workload",
    "summarize",
    "verify_network",
]
