"""Serving policy as data: deadlines, retries, hedging, admission control.

Every knob the runtime honours lives in one frozen :class:`ServePolicy`;
the frontier loop itself stays policy-free (it only steps hops), and the
runtime consults these values between steps.  Keeping policy declarative
is what makes the outcome-invariance property testable at all: two runs
that differ only in policy must deliver identical routing outcomes on a
static network, differing only in latency and counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.routing import MAX_HOPS

__all__ = ["DomainBuckets", "NO_POLICY", "ServePolicy"]


@dataclass(frozen=True)
class ServePolicy:
    """Per-runtime serving policy (all knobs, no behaviour).

    Latency bookkeeping is virtual milliseconds: with a
    :class:`~repro.perf.latency.LatencyTable` each hop costs its true
    transit-stub ms, otherwise ``hop_ms`` per hop; a tick spent waiting
    (retry backoff) costs ``tick_ms``.  Deadlines are end-to-end per
    lookup — hops, backoff waits and the hedge runner all draw from the
    same budget.
    """

    #: End-to-end completion budget per lookup (virtual ms).
    deadline_ms: float = float("inf")
    #: Per-attempt hop bound; mirrors the scalar engines' ``MAX_HOPS``.
    hop_cap: int = MAX_HOPS
    #: Virtual cost of one scheduler tick for *waiting* slots.
    tick_ms: float = 1.0
    #: Per-hop cost when the runtime has no latency table.
    hop_ms: float = 1.0
    #: Total tries per lookup (1 = no retries).
    max_attempts: int = 1
    #: Backoff before attempt 2 (doubles per further attempt).
    retry_backoff_ms: float = 4.0
    #: Restart retry attempts from an alternate contact of the source
    #: (attempt ``k`` starts at the source's ``k``-th neighbor) instead of
    #: re-walking from the source itself.
    retry_alternates: bool = False
    #: Duplicate the slowest ``p``-quantile of in-flight lookups (None
    #: disables hedging).  First completion wins; the loser is cancelled.
    hedge_quantile: Optional[float] = None
    #: Never hedge a lookup younger than this (virtual ms).
    hedge_min_ms: float = 0.0
    #: Token-bucket refill per tick per top-level domain (None = no
    #: admission control).
    admit_rate: Optional[float] = None
    #: Token-bucket capacity (burst) per top-level domain.
    admit_burst: float = 64.0

    def backoff_ms(self, attempt: int) -> float:
        """Exponential backoff before the given (second or later) attempt."""
        return self.retry_backoff_ms * (2.0 ** max(attempt - 2, 0))


#: The identity policy: no deadlines, retries, hedging or admission.
NO_POLICY = ServePolicy()


class DomainBuckets:
    """Per-top-domain token buckets, vectorized over submission batches.

    Buckets refill by ``rate`` tokens per tick up to ``burst``; each
    admitted lookup consumes one token from its source's top-level
    domain.  Admission within a batch is first-come: when a domain's
    batch exceeds its available tokens, the earliest submissions win and
    the rest are shed.  Fully deterministic.
    """

    def __init__(self, rate: float, burst: float, domains: Sequence[str] = ()):
        self.rate = float(rate)
        self.burst = float(burst)
        self._codes: Dict[str, int] = {}
        self.tokens = np.zeros(0, dtype=np.float64)
        for domain in domains:
            self.code(domain)

    def code(self, domain: str) -> int:
        """Stable small-int code for a domain label (new buckets start full)."""
        code = self._codes.get(domain)
        if code is None:
            code = len(self._codes)
            self._codes[domain] = code
            self.tokens = np.append(self.tokens, self.burst)
        return code

    @property
    def domains(self) -> Sequence[str]:
        return tuple(self._codes)

    def refill(self) -> None:
        """Add one tick's ``rate`` tokens to every bucket, capped at burst."""
        if self.tokens.size:
            np.minimum(self.tokens + self.rate, self.burst, out=self.tokens)

    def admit(self, codes: np.ndarray) -> np.ndarray:
        """Consume tokens for a batch; True where admitted (batch order)."""
        admitted = np.zeros(codes.size, dtype=bool)
        if codes.size == 0:
            return admitted
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )
        runs = np.diff(np.r_[starts, sorted_codes.size])
        rank = np.arange(sorted_codes.size) - np.repeat(starts, runs)
        quota = np.floor(self.tokens[sorted_codes]).astype(np.int64)
        admitted[order] = rank < quota
        taken = np.bincount(codes[admitted], minlength=self.tokens.size)
        self.tokens -= taken[: self.tokens.size]
        return admitted
