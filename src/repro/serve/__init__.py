"""`repro.serve`: a batched, policy-driven lookup-serving runtime.

The batch kernels (:mod:`repro.perf.kernels`) route; this package *serves*:
:class:`ServeRuntime` admits lookups (up to millions in flight), advances
them frontier-at-a-time — every tick, all in-flight lookups are gathered
into numpy arrays and stepped one hop through a single fused
:meth:`~repro.perf.kernels.CompiledNetwork.frontier_step` call — and
applies production policy *as data* around that hot loop: per-lookup
deadlines, bounded retries with exponential backoff against alternate
contacts, hedged requests, and per-top-domain token-bucket admission
control.  A pluggable before/after middleware chain (tracing, SLO
recording, ACL-style domain checks) wraps submit/complete without ever
touching the frontier loop.

Quickstart::

    python -m repro.serve --nodes 2048 --lookups 20000 --mode closed

See ``docs/performance.md`` ("Serving") for the architecture and knobs.
"""

from .batcher import FrontierBatcher, compile_protocol_view
from .middleware import (
    CompletionBatch,
    DomainACL,
    Middleware,
    SLOMiddleware,
    SubmitBatch,
    TracingMiddleware,
)
from .policy import NO_POLICY, DomainBuckets, ServePolicy
from .runtime import (
    STATUS_DEADLINE,
    STATUS_DENIED,
    STATUS_FAIL,
    STATUS_HOPCAP,
    STATUS_LOST,
    STATUS_OK,
    STATUS_SHED,
    ServeReport,
    ServeRuntime,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "CompletionBatch",
    "DomainACL",
    "DomainBuckets",
    "FrontierBatcher",
    "Middleware",
    "NO_POLICY",
    "SLOMiddleware",
    "STATUS_DEADLINE",
    "STATUS_DENIED",
    "STATUS_FAIL",
    "STATUS_HOPCAP",
    "STATUS_LOST",
    "STATUS_OK",
    "STATUS_SHED",
    "ServePolicy",
    "ServeReport",
    "ServeRuntime",
    "SubmitBatch",
    "TracingMiddleware",
    "compile_protocol_view",
    "run_closed_loop",
    "run_open_loop",
]
