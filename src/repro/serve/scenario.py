"""Serving-mode scenario replays: the zoo's traffic through the runtime.

:func:`serve_schedule` replays a compiled scenario schedule with the
lookup traffic served *batched*: consecutive lookup events are buffered
(their rank-addressed sources resolved exactly as
:func:`~repro.simulation.churn.run_schedule` resolves them — liveness
only changes at non-lookup events, so buffering is sound) and drained
through one :class:`~repro.serve.runtime.ServeRuntime`, while every
non-lookup event is delegated to ``run_schedule`` single-event slices so
joins, crashes, domain kills, partitions, heals, puts/gets and
checkpoints behave identically to the scalar replay.  After any
membership change the compiled view is recompiled before the next batch.

The delivered/offered ratio lands in the standard per-scenario ``slo.*``
instruments under ``<scenario>.serve``, next to the scalar run's label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..simulation.churn import Event, ScheduleReport, run_schedule
from .batcher import compile_protocol_view
from .middleware import SLOMiddleware
from .policy import NO_POLICY, ServePolicy
from .runtime import ServeReport, ServeRuntime

__all__ = ["ServingScenarioResult", "serve_scenario", "serve_schedule"]


@dataclass
class ServingScenarioResult:
    """Outcome of one serving-mode scenario replay."""

    name: str
    report: ServeReport
    sub_reports: List[ScheduleReport] = field(default_factory=list)

    @property
    def offered(self) -> int:
        return int(self.report.counters["submitted"])

    @property
    def delivered(self) -> int:
        return int(self.report.counters["delivered"])

    @property
    def ratio(self) -> float:
        """Delivered/offered — the serving-mode availability number."""
        return self.delivered / self.offered if self.offered else float("nan")


def serve_schedule(
    net,
    events,
    policy: Optional[ServePolicy] = None,
    latency=None,
    label: Optional[str] = None,
    data=None,
    min_population: int = 3,
) -> Tuple[ServeReport, List[ScheduleReport]]:
    """Replay ``events`` on ``net``, serving lookup bursts batched.

    Returns the runtime's :class:`ServeReport` plus the per-slice
    :class:`ScheduleReport` list from the delegated non-lookup events.
    """
    middlewares = [SLOMiddleware(label)] if label else []
    runtime = ServeRuntime(
        *compile_protocol_view(net),
        policy=policy if policy is not None else NO_POLICY,
        latency=latency,
        middlewares=middlewares,
    )
    pending_sources: List[int] = []
    pending_keys: List[int] = []
    sub_reports: List[ScheduleReport] = []
    view_dirty = False

    def flush() -> None:
        nonlocal view_dirty
        if not pending_sources:
            return
        if view_dirty:
            runtime.set_view(*compile_protocol_view(net))
            view_dirty = False
        runtime.submit_many(pending_sources, pending_keys)
        runtime.drain()
        pending_sources.clear()
        pending_keys.clear()

    for event in events:
        if event.kind == "lookup":
            live = net.live_view()
            if len(live) >= 2:
                pending_sources.append(live[event.rank % len(live)])
                pending_keys.append(event.key)
            continue
        flush()
        sub_reports.append(
            run_schedule(
                net, [event], data=data, min_population=min_population
            )
        )
        view_dirty = True
    flush()
    return runtime.report(), sub_reports


def serve_scenario(
    spec,
    seed: int = 0,
    engine: str = "auto",
    policy: Optional[ServePolicy] = None,
    latency: bool = True,
) -> ServingScenarioResult:
    """Compile, bootstrap and serve one catalog scenario end to end."""
    from ..scenarios.dsl import bootstrap_scenario, compile_scenario
    from ..scenarios.runner import scenario_latency

    events = compile_scenario(spec, seed)
    table = None
    if latency:
        topology, _ = scenario_latency(spec, seed, events)
        table = topology.latency_table()
    net = bootstrap_scenario(spec, seed, engine=engine)
    data = None
    if spec.data_replicas is not None:
        from ..perf.storage import FastDataLayer

        data = FastDataLayer(net, replicas=spec.data_replicas)
    report, sub_reports = serve_schedule(
        net,
        events,
        policy=policy,
        latency=table,
        label=f"{spec.name}.serve",
        data=data,
    )
    return ServingScenarioResult(
        name=spec.name, report=report, sub_reports=sub_reports
    )
