"""The event-loop serving runtime: frontier-at-a-time batched lookups.

:class:`ServeRuntime` owns a :class:`~repro.serve.batcher.FrontierBatcher`
of in-flight lookups over one compiled network view.  Every
:meth:`~ServeRuntime.tick`:

1. waiting (backed-off) slots age and re-enter the frontier;
2. all RUNNING slots are gathered into contiguous arrays and advanced one
   greedy hop through a single fused
   :meth:`~repro.perf.kernels.CompiledNetwork.frontier_step` call — no
   per-message Python callbacks, no per-lookup dispatch;
3. policy is applied *between* hops as vector masks: dead-current-node
   losses, per-attempt hop caps, terminal outcomes with bounded
   exponential-backoff retries against alternate contacts, end-to-end
   deadline expiry, and hedge launches for the slowest p-quantile;
4. the tick's completions are emitted as one batch through the middleware
   chain and the ``serve.*`` metrics.

Outcome contract: on a static view, every lookup that completes with a
routing outcome (OK or FAIL) has the success/terminal verdict of the
scalar engines — policy shifts *when* and *whether* a lookup completes
(latency, shed/expired counters), never *where* it lands.  That is what
the property tests pin and what makes the runtime differentially
checkable against :class:`~repro.simulation.async_lookup.AsyncEngine`
(:func:`repro.verify.oracles.compare_serving`).

Under churn, call :meth:`~ServeRuntime.set_view` with a fresh
:func:`~repro.serve.batcher.compile_protocol_view` snapshot between
ticks: in-flight state is id-based and survives the swap; lookups parked
on nodes that died resolve as LOST exactly like AsyncEngine's in-flight
message losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..perf.kernels import CompiledNetwork, _in_sorted
from ..perf.latency import LatencyTable
from .batcher import FREE, RUNNING, WAITING, FrontierBatcher
from .middleware import CompletionBatch, Middleware, SubmitBatch
from .policy import NO_POLICY, DomainBuckets, ServePolicy

__all__ = [
    "STATUS_DEADLINE",
    "STATUS_DENIED",
    "STATUS_FAIL",
    "STATUS_HOPCAP",
    "STATUS_LOST",
    "STATUS_OK",
    "STATUS_SHED",
    "ServeReport",
    "ServeRuntime",
    "run_closed_loop",
    "run_open_loop",
]

#: Completion status codes (``CompletionBatch.status``).
STATUS_OK = 0  # served; ``success`` holds the routing verdict (True)
STATUS_FAIL = 1  # served; stuck short of the key, not responsible
STATUS_LOST = 2  # current node died mid-flight (AsyncEngine's lost message)
STATUS_HOPCAP = 3  # exceeded the per-attempt hop cap
STATUS_DEADLINE = 4  # end-to-end deadline expired
STATUS_SHED = 5  # admission control: no token for the source's domain
STATUS_DENIED = 6  # vetoed by a before-submit middleware (ACL)

_STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_FAIL: "fail",
    STATUS_LOST: "lost",
    STATUS_HOPCAP: "hop_limit",
    STATUS_DEADLINE: "deadline",
    STATUS_SHED: "shed",
    STATUS_DENIED: "denied",
}

#: Statuses that carry a routing outcome (the lookup was actually served).
SERVED_STATUSES = (STATUS_OK, STATUS_FAIL)


@dataclass
class ServeReport:
    """Everything a finished serving run produced, in completion order."""

    counters: Dict[str, int]
    tickets: np.ndarray
    sources: np.ndarray
    keys: np.ndarray
    terminals: np.ndarray
    hops: np.ndarray
    latency_ms: np.ndarray
    attempts: np.ndarray
    success: np.ndarray
    status: np.ndarray

    @property
    def size(self) -> int:
        return int(self.tickets.size)

    @property
    def delivered(self) -> np.ndarray:
        return self.success.copy()

    @property
    def served(self) -> np.ndarray:
        """Lookups that got a routing outcome (not shed/denied/expired)."""
        return np.isin(self.status, SERVED_STATUSES)

    def quantile_ms(self, q: float) -> float:
        """Latency quantile over delivered lookups (NaN when none)."""
        ms = self.latency_ms[self.delivered]
        return float(np.quantile(ms, q)) if ms.size else float("nan")

    def outcome_map(self) -> Dict[int, Tuple[bool, int, int]]:
        """ticket -> (success, terminal, status) for equivalence checks."""
        return {
            int(t): (bool(s), int(term), int(st))
            for t, s, term, st in zip(
                self.tickets, self.success, self.terminals, self.status
            )
        }

    def summary(self) -> str:
        """One-line human summary of counters and latency quantiles."""
        c = self.counters
        return (
            f"{c['submitted']} submitted / {c['completed']} completed / "
            f"{c['delivered']} delivered  "
            f"(shed {c['shed']}, denied {c['denied']}, expired {c['expired']}, "
            f"lost {c['lost']}, retries {c['retries']}, hedges {c['hedges']}, "
            f"p50 {self.quantile_ms(0.5):.1f} ms, "
            f"p99 {self.quantile_ms(0.99):.1f} ms, {c['ticks']} ticks)"
        )


class ServeRuntime:
    """Batched lookup serving over one compiled network view."""

    def __init__(
        self,
        compiled: CompiledNetwork,
        alive: Optional[np.ndarray] = None,
        *,
        policy: Optional[ServePolicy] = None,
        latency: Optional[LatencyTable] = None,
        middlewares: Sequence[Middleware] = (),
        domain_of: Optional[Callable[[int], str]] = None,
    ) -> None:
        self.compiled = compiled
        self.alive = alive
        self.policy = policy if policy is not None else NO_POLICY
        self.latency = latency
        self._lat_state = compiled._latency_state(latency)
        self.middlewares = list(middlewares)
        self.domain_of = domain_of
        self._domain_cache: Dict[int, str] = {}
        self.batcher = FrontierBatcher()
        self.buckets: Optional[DomainBuckets] = None
        if self.policy.admit_rate is not None:
            self.buckets = DomainBuckets(
                self.policy.admit_rate, self.policy.admit_burst
            )
        self._next_ticket = 0
        self.completed_tickets = 0
        self.counters: Dict[str, int] = {
            key: 0
            for key in (
                "submitted", "admitted", "shed", "denied", "completed",
                "delivered", "failed", "lost", "hop_limit", "expired",
                "retries", "hedges", "hedge_wins", "hedge_cancelled",
                "ticks",
            )
        }
        self._done: Dict[str, List[np.ndarray]] = {
            key: []
            for key in (
                "tickets", "sources", "keys", "terminals", "hops",
                "latency_ms", "attempts", "success", "status",
            )
        }

    # ------------------------------------------------------------- views

    def set_view(
        self, compiled: CompiledNetwork, alive: Optional[np.ndarray] = None
    ) -> None:
        """Swap the network snapshot (after churn); in-flight state survives."""
        self.compiled = compiled
        self.alive = alive
        self._lat_state = compiled._latency_state(self.latency)

    @property
    def in_flight(self) -> int:
        """Slots (runners) currently RUNNING or WAITING."""
        return self.batcher.in_flight

    @property
    def outstanding(self) -> int:
        """Tickets admitted but not yet completed."""
        return self._next_ticket - self.completed_tickets

    # ------------------------------------------------------------ submit

    def _domain(self, node_id: int) -> str:
        label = self._domain_cache.get(node_id)
        if label is None:
            label = self.domain_of(node_id) if self.domain_of else ""
            self._domain_cache[node_id] = label
        return label

    def submit_many(
        self,
        sources: Sequence[int],
        keys: Sequence[int],
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Admit a batch of lookups; returns their tickets.

        Every submission gets a ticket and exactly one eventual
        completion: denied and shed lookups complete immediately with
        their status, the rest enter the frontier.
        """
        src = np.ascontiguousarray(np.asarray(sources, dtype=np.uint64))
        dst = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64))
        if src.shape != dst.shape:
            raise ValueError(f"{src.size} sources vs {dst.size} keys")
        n = int(src.size)
        tickets = np.arange(
            self._next_ticket, self._next_ticket + n, dtype=np.int64
        )
        self._next_ticket += n
        self.counters["submitted"] += n
        self._inc_obs("serve.submitted", n)
        domains = [self._domain(s) for s in src.tolist()]
        batch = SubmitBatch(sources=src, keys=dst, domains=domains)
        deny = np.zeros(n, dtype=bool)
        for mw in self.middlewares:
            mask = mw.before_submit(batch)
            if mask is not None:
                deny |= mask
        stage = _CompletionStage()
        denied_idx = np.flatnonzero(deny)
        if denied_idx.size:
            self.counters["denied"] += int(denied_idx.size)
            self._inc_obs("serve.denied", int(denied_idx.size))
            stage.add_immediate(tickets, src, dst, denied_idx, STATUS_DENIED)
        passed = np.flatnonzero(~deny)
        if self.buckets is not None and passed.size:
            codes = np.asarray(
                [self.buckets.code(domains[i]) for i in passed.tolist()],
                dtype=np.int64,
            )
            admitted = self.buckets.admit(codes)
            shed_idx = passed[~admitted]
            if shed_idx.size:
                self.counters["shed"] += int(shed_idx.size)
                self._inc_obs("serve.shed", int(shed_idx.size))
                stage.add_immediate(tickets, src, dst, shed_idx, STATUS_SHED)
            passed = passed[admitted]
        if passed.size:
            self.counters["admitted"] += int(passed.size)
            slots = self.batcher.alloc(int(passed.size))
            b = self.batcher
            b.ticket[slots] = tickets[passed]
            b.src[slots] = src[passed]
            b.cur[slots] = src[passed]
            b.dest[slots] = dst[passed]
            b.hops[slots] = 0
            b.elapsed_ms[slots] = 0.0
            b.deadline_ms[slots] = (
                self.policy.deadline_ms if deadline_ms is None else deadline_ms
            )
            b.attempt[slots] = 1
            b.wait[slots] = 0
            b.twin[slots] = -1
            b.is_hedge[slots] = False
            b.state[slots] = RUNNING
        self._emit(stage)
        return tickets

    # -------------------------------------------------------------- tick

    def tick(self) -> int:
        """One frontier iteration; returns the number of lookups stepped."""
        b = self.batcher
        policy = self.policy
        self.counters["ticks"] += 1
        if self.buckets is not None:
            self.buckets.refill()
        waiting = b.slots_in(WAITING)
        if waiting.size:
            b.elapsed_ms[waiting] += policy.tick_ms
            b.wait[waiting] -= 1
            ready = waiting[b.wait[waiting] <= 0]
            b.state[ready] = RUNNING
        stage = _CompletionStage()
        act = b.slots_in(RUNNING)
        moved_count = 0
        if act.size:
            if self.alive is not None:
                lost = ~_in_sorted(self.alive, b.cur[act])
                if np.any(lost):
                    self._fail_or_retry(stage, act[lost], STATUS_LOST)
                    act = act[~lost]
            if act.size:
                over = b.hops[act] >= policy.hop_cap
                if np.any(over):
                    self._fail_or_retry(stage, act[over], STATUS_HOPCAP)
                    act = act[~over]
            if act.size:
                next_ids, moved, success, hop_ms = self.compiled.frontier_step(
                    b.cur[act], b.dest[act], self.alive, self._lat_state
                )
                b.cur[act] = next_ids
                mv = act[moved]
                moved_count = int(mv.size)
                b.hops[mv] += 1
                if hop_ms is not None:
                    b.elapsed_ms[mv] += hop_ms[moved]
                else:
                    b.elapsed_ms[mv] += policy.hop_ms
                fin = act[~moved]
                if fin.size:
                    verdict = success[~moved]
                    ok = fin[verdict]
                    if ok.size:
                        self._stage_complete(stage, ok, STATUS_OK, True)
                    bad = fin[~verdict]
                    if bad.size:
                        self._fail_or_retry(stage, bad, STATUS_FAIL)
        if np.isfinite(policy.deadline_ms) or self._has_finite_deadlines():
            open_slots = np.flatnonzero(b.state != FREE)
            expired = open_slots[
                b.elapsed_ms[open_slots] > b.deadline_ms[open_slots]
            ]
            if expired.size:
                self.counters["expired"] += self._stage_complete(
                    stage, expired, STATUS_DEADLINE, False
                )
        self._maybe_hedge()
        self._emit(stage)
        return moved_count

    def _has_finite_deadlines(self) -> bool:
        # Per-submit deadlines may be finite under an infinite policy
        # default; cheap scan only when any slot is occupied.
        b = self.batcher
        return bool(
            np.any(np.isfinite(b.deadline_ms[b.state != FREE]))
        )

    def drain(self, max_ticks: int = 1_000_000) -> None:
        """Tick until every admitted lookup has completed."""
        ticks = 0
        while self.in_flight:
            self.tick()
            ticks += 1
            if ticks > max_ticks:
                raise RuntimeError(f"serving did not drain in {max_ticks} ticks")

    def report(self) -> ServeReport:
        """Snapshot of all completions so far (completion order)."""
        def cat(key: str, dtype) -> np.ndarray:
            parts = self._done[key]
            return (
                np.concatenate(parts) if parts else np.zeros(0, dtype=dtype)
            )

        return ServeReport(
            counters=dict(self.counters),
            tickets=cat("tickets", np.int64),
            sources=cat("sources", np.uint64),
            keys=cat("keys", np.uint64),
            terminals=cat("terminals", np.uint64),
            hops=cat("hops", np.int64),
            latency_ms=cat("latency_ms", np.float64),
            attempts=cat("attempts", np.int32),
            success=cat("success", bool),
            status=cat("status", np.int16),
        )

    # ------------------------------------------------------------ policy

    def _fail_or_retry(
        self, stage: "_CompletionStage", slots: np.ndarray, status: int
    ) -> None:
        b = self.batcher
        policy = self.policy
        retryable = (b.attempt[slots] < policy.max_attempts) & ~b.is_hedge[slots]
        retry = slots[retryable]
        done = slots[~retryable]
        if retry.size:
            self.counters["retries"] += int(retry.size)
            self._inc_obs("serve.retries", int(retry.size))
            b.attempt[retry] += 1
            b.hops[retry] = 0
            starts = b.src[retry]
            if policy.retry_alternates:
                starts = self._alternate_contacts(b.src[retry], b.attempt[retry])
            b.cur[retry] = starts
            backoff = policy.retry_backoff_ms * np.power(
                2.0, b.attempt[retry].astype(np.float64) - 2.0
            )
            b.wait[retry] = np.maximum(
                np.ceil(backoff / max(policy.tick_ms, 1e-9)), 1.0
            ).astype(np.int32)
            b.state[retry] = WAITING
        if done.size:
            # A failing runner whose hedge twin is still in flight does not
            # doom the ticket: drop it silently and let the twin race on.
            done = self._drop_if_twin_alive(done)
        if done.size:
            count = self._stage_complete(stage, done, status, False)
            key = {
                STATUS_LOST: "lost",
                STATUS_HOPCAP: "hop_limit",
                STATUS_FAIL: "failed",
            }[status]
            self.counters[key] += count

    def _drop_if_twin_alive(self, slots: np.ndarray) -> np.ndarray:
        b = self.batcher
        keep: List[int] = []
        for s in slots.tolist():
            t = int(b.twin[s])
            if t >= 0 and b.state[t] != FREE and b.ticket[t] == b.ticket[s]:
                self.counters["hedge_cancelled"] += 1
                b.twin[t] = -1
                b.release(np.asarray([s], dtype=np.int64))
            else:
                keep.append(s)
        return np.asarray(keep, dtype=np.int64)

    def _alternate_contacts(
        self, srcs: np.ndarray, attempts: np.ndarray
    ) -> np.ndarray:
        """Attempt ``k`` restarts at the source's ``(k-2)``-th contact."""
        c = self.compiled
        known = _in_sorted(c.ids, srcs)
        out = srcs.copy()
        if not np.any(known):
            return out
        pos = np.searchsorted(c.ids, srcs[known])
        start = c.indptr[pos].astype(np.int64)
        count = c.indptr[pos + 1].astype(np.int64) - start
        pick = np.where(
            count > 0,
            start + (attempts[known].astype(np.int64) - 2) % np.maximum(count, 1),
            -1,
        )
        alt = np.where(pick >= 0, c.neighbors[np.maximum(pick, 0)], srcs[known])
        out[known] = alt
        return out

    def _maybe_hedge(self) -> None:
        policy = self.policy
        if policy.hedge_quantile is None:
            return
        b = self.batcher
        running = b.slots_in(RUNNING)
        if running.size < 2:
            return
        elapsed = b.elapsed_ms[running]
        threshold = max(
            float(np.quantile(elapsed, policy.hedge_quantile)),
            policy.hedge_min_ms,
        )
        eligible = running[
            (elapsed >= threshold)
            & ~b.is_hedge[running]
            & (b.twin[running] < 0)
            & (b.attempt[running] == 1)
        ]
        if not eligible.size:
            return
        n = int(eligible.size)
        self.counters["hedges"] += n
        self._inc_obs("serve.hedges", n)
        slots = b.alloc(n)
        b.ticket[slots] = b.ticket[eligible]
        b.src[slots] = b.src[eligible]
        b.cur[slots] = b.src[eligible]
        b.dest[slots] = b.dest[eligible]
        b.hops[slots] = 0
        b.elapsed_ms[slots] = b.elapsed_ms[eligible]
        b.deadline_ms[slots] = b.deadline_ms[eligible]
        b.attempt[slots] = 1
        b.wait[slots] = 0
        b.is_hedge[slots] = True
        b.twin[slots] = eligible
        b.twin[eligible] = slots
        b.state[slots] = RUNNING

    # ------------------------------------------------------- completions

    def _stage_complete(
        self,
        stage: "_CompletionStage",
        slots: np.ndarray,
        status: int,
        success,
    ) -> int:
        """Complete tickets (first runner wins; hedge siblings cancelled)."""
        b = self.batcher
        completed = 0
        for s in slots.tolist():
            if b.state[s] == FREE:
                continue  # its sibling won earlier in this pass
            t = int(b.twin[s])
            if t >= 0 and b.state[t] != FREE and b.ticket[t] == b.ticket[s]:
                self.counters["hedge_cancelled"] += 1
                if bool(b.is_hedge[s]):
                    self.counters["hedge_wins"] += 1
                b.release(np.asarray([t], dtype=np.int64))
            stage.add_slot(b, s, status, bool(success))
            b.release(np.asarray([s], dtype=np.int64))
            completed += 1
        return completed

    def _emit(self, stage: "_CompletionStage") -> None:
        batch = stage.batch()
        if batch is None:
            return
        self.completed_tickets += batch.size
        self.counters["completed"] += batch.size
        delivered = int(np.count_nonzero(batch.delivered))
        self.counters["delivered"] += delivered
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter("serve.completed").inc(batch.size)
            registry.counter("serve.delivered").inc(delivered)
            served = np.isin(batch.status, SERVED_STATUSES)
            if np.any(served):
                registry.histogram("serve.latency_ms").observe_many(
                    batch.latency_ms[served].tolist()
                )
                registry.histogram("serve.hops").observe_many(
                    batch.hops[served].tolist()
                )
        for mw in self.middlewares:
            mw.after_complete(batch)
        done = self._done
        done["tickets"].append(batch.tickets)
        done["sources"].append(batch.sources)
        done["keys"].append(batch.keys)
        done["terminals"].append(batch.terminals)
        done["hops"].append(batch.hops)
        done["latency_ms"].append(batch.latency_ms)
        done["attempts"].append(batch.attempts)
        done["success"].append(batch.success)
        done["status"].append(batch.status)

    def _inc_obs(self, name: str, n: int) -> None:
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(name).inc(n)


class _CompletionStage:
    """Per-tick accumulator assembling one :class:`CompletionBatch`."""

    def __init__(self) -> None:
        self.tickets: List[int] = []
        self.sources: List[int] = []
        self.keys: List[int] = []
        self.terminals: List[int] = []
        self.hops: List[int] = []
        self.latency_ms: List[float] = []
        self.attempts: List[int] = []
        self.success: List[bool] = []
        self.status: List[int] = []

    def add_slot(
        self, b: FrontierBatcher, slot: int, status: int, success: bool
    ) -> None:
        self.tickets.append(int(b.ticket[slot]))
        self.sources.append(int(b.src[slot]))
        self.keys.append(int(b.dest[slot]))
        self.terminals.append(int(b.cur[slot]))
        self.hops.append(int(b.hops[slot]))
        self.latency_ms.append(float(b.elapsed_ms[slot]))
        self.attempts.append(int(b.attempt[slot]))
        self.success.append(success)
        self.status.append(status)

    def add_immediate(
        self,
        tickets: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        idx: np.ndarray,
        status: int,
    ) -> None:
        """Submit-time completions (denied/shed): never entered the frontier."""
        for i in idx.tolist():
            self.tickets.append(int(tickets[i]))
            self.sources.append(int(src[i]))
            self.keys.append(int(dst[i]))
            self.terminals.append(int(src[i]))
            self.hops.append(0)
            self.latency_ms.append(0.0)
            self.attempts.append(0)
            self.success.append(False)
            self.status.append(status)

    def batch(self) -> Optional[CompletionBatch]:
        if not self.tickets:
            return None
        return CompletionBatch(
            tickets=np.asarray(self.tickets, dtype=np.int64),
            sources=np.asarray(self.sources, dtype=np.uint64),
            keys=np.asarray(self.keys, dtype=np.uint64),
            terminals=np.asarray(self.terminals, dtype=np.uint64),
            hops=np.asarray(self.hops, dtype=np.int64),
            latency_ms=np.asarray(self.latency_ms, dtype=np.float64),
            attempts=np.asarray(self.attempts, dtype=np.int32),
            success=np.asarray(self.success, dtype=bool),
            status=np.asarray(self.status, dtype=np.int16),
        )


# ---------------------------------------------------------------- drivers


def run_closed_loop(
    runtime: ServeRuntime,
    sources: Sequence[int],
    keys: Sequence[int],
    concurrency: int = 1024,
    on_tick: Optional[Callable[[ServeRuntime, int], None]] = None,
) -> ServeReport:
    """Fixed-concurrency driver: each completion admits the next lookup.

    ``on_tick(runtime, tick_index)`` runs after every tick — the hook for
    injecting churn and swapping in a recompiled view mid-run.
    """
    src = np.asarray(sources, dtype=np.uint64)
    dst = np.asarray(keys, dtype=np.uint64)
    total = int(src.size)
    i = 0
    ticks = 0
    while i < total or runtime.in_flight:
        room = concurrency - runtime.outstanding
        if room > 0 and i < total:
            take = min(room, total - i)
            runtime.submit_many(src[i : i + take], dst[i : i + take])
            i += take
        runtime.tick()
        ticks += 1
        if on_tick is not None:
            on_tick(runtime, ticks)
    return runtime.report()


def run_open_loop(
    runtime: ServeRuntime,
    sources: Sequence[int],
    keys: Sequence[int],
    per_tick: int = 1024,
    on_tick: Optional[Callable[[ServeRuntime, int], None]] = None,
) -> ServeReport:
    """Offered-rate driver: ``per_tick`` lookups submitted every tick,
    regardless of completions (admission control does the protecting)."""
    src = np.asarray(sources, dtype=np.uint64)
    dst = np.asarray(keys, dtype=np.uint64)
    total = int(src.size)
    i = 0
    ticks = 0
    while i < total or runtime.in_flight:
        if i < total:
            take = min(per_tick, total - i)
            runtime.submit_many(src[i : i + take], dst[i : i + take])
            i += take
        runtime.tick()
        ticks += 1
        if on_tick is not None:
            on_tick(runtime, ticks)
    return runtime.report()
