"""The frontier batcher: slot-based SoA state for in-flight lookups.

:class:`FrontierBatcher` owns one structure-of-arrays buffer with a slot
per admitted lookup runner (a lookup and, while hedged, its duplicate).
The runtime's tick gathers the RUNNING slots into contiguous arrays, steps
them through one fused kernel call, and scatters results back — capacity
grows by doubling and freed slots are recycled, so sustained serving never
reallocates and the buffer admits millions of in-flight lookups.

:func:`compile_protocol_view` freezes a live
:class:`~repro.simulation.protocol.SimulatedCrescendo` into the CSR form
the kernels step over — same decision inputs as the scalar
:class:`~repro.simulation.async_lookup.AsyncEngine` (each node's
``routing_contacts()``, liveness applied at step time), which is what
makes the two engines differentially comparable hop for hop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..perf.kernels import CompiledNetwork

__all__ = ["FREE", "RUNNING", "WAITING", "FrontierBatcher", "compile_protocol_view"]

FREE, RUNNING, WAITING = 0, 1, 2

_GROW = 2


class FrontierBatcher:
    """Slot-recycling SoA buffer; one row per in-flight lookup runner."""

    def __init__(self, capacity: int = 1024) -> None:
        capacity = max(int(capacity), 16)
        self.ticket = np.full(capacity, -1, dtype=np.int64)
        self.src = np.zeros(capacity, dtype=np.uint64)
        self.cur = np.zeros(capacity, dtype=np.uint64)
        self.dest = np.zeros(capacity, dtype=np.uint64)
        self.hops = np.zeros(capacity, dtype=np.int64)
        self.elapsed_ms = np.zeros(capacity, dtype=np.float64)
        self.deadline_ms = np.zeros(capacity, dtype=np.float64)
        self.attempt = np.zeros(capacity, dtype=np.int32)
        self.wait = np.zeros(capacity, dtype=np.int32)
        #: Slot index of the hedge sibling (-1 when unhedged).
        self.twin = np.full(capacity, -1, dtype=np.int64)
        self.is_hedge = np.zeros(capacity, dtype=bool)
        self.domain = np.zeros(capacity, dtype=np.int32)
        self.state = np.zeros(capacity, dtype=np.uint8)
        self._free = list(range(capacity - 1, -1, -1))

    @property
    def capacity(self) -> int:
        return int(self.state.size)

    @property
    def in_flight(self) -> int:
        """Slots currently RUNNING or WAITING."""
        return self.capacity - len(self._free)

    def _grow(self, need: int) -> None:
        old = self.capacity
        new = max(old * _GROW, old + need)
        for name in (
            "ticket", "src", "cur", "dest", "hops", "elapsed_ms",
            "deadline_ms", "attempt", "wait", "twin", "is_hedge",
            "domain", "state",
        ):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        self.ticket[old:] = -1
        self.twin[old:] = -1
        self._free.extend(range(new - 1, old - 1, -1))

    def alloc(self, n: int) -> np.ndarray:
        """Claim ``n`` free slots (grows the buffer as needed)."""
        if len(self._free) < n:
            self._grow(n - len(self._free))
        slots = np.asarray([self._free.pop() for _ in range(n)], dtype=np.int64)
        return slots

    def release(self, slots: np.ndarray) -> None:
        """Return slots to the free list (ticket and twin link cleared)."""
        self.state[slots] = FREE
        self.ticket[slots] = -1
        self.twin[slots] = -1
        self._free.extend(int(s) for s in slots)

    def slots_in(self, state: int) -> np.ndarray:
        """Indices of every slot currently in ``state`` (ascending)."""
        return np.flatnonzero(self.state == state)


def compile_protocol_view(
    net,
) -> Tuple[CompiledNetwork, np.ndarray]:
    """Freeze a live protocol net into ``(CompiledNetwork, live-id array)``.

    The CSR rows are each live node's ``routing_contacts()`` (fingers plus
    leaf-set entries, stale links included — liveness is the *step-time*
    filter, exactly as ``AsyncEngine`` applies it), restricted to ids the
    net still remembers.  Dead and suspended nodes keep an id row (so
    in-flight lookups parked on them resolve as lost, not as key errors)
    but no contacts.  Recompile after churn and keep stepping the same
    :class:`~repro.perf.kernels.InFlightFrontier` — its state is id-based.
    """
    ids = np.asarray(sorted(net.nodes), dtype=np.uint64)
    known = net.nodes
    live = set(net.live_view())
    indptr = np.zeros(ids.size + 1, dtype=np.int64)
    flat: list = []
    for i, nid in enumerate(ids.tolist()):
        if nid in live:
            flat.extend(
                sorted(c for c in known[nid].routing_contacts() if c in known)
            )
        indptr[i + 1] = len(flat)
    neighbors = np.asarray(flat, dtype=np.uint64)
    nbr_pos = np.searchsorted(ids, neighbors).astype(np.int64)
    compiled = CompiledNetwork.from_arrays(
        metric="ring",
        bits=net.space.bits,
        ids=ids,
        indptr=indptr,
        neighbors=neighbors,
        nbr_pos=nbr_pos,
    )
    alive_arr = np.asarray(net.live_view(), dtype=np.uint64)
    return compiled, alive_arr
