"""Pluggable before/after middleware around the serving runtime.

Middleware attaches policy-adjacent concerns — tracing, SLO recording,
ACL-style domain checks (the §4.1 access-control story: a domain may
restrict who can query it) — to submit and complete *batches*, never to
individual hops: the frontier loop stays untouched no matter how many
middlewares are chained.

A middleware is any object with the two (optional) hooks of
:class:`Middleware`.  ``before_submit`` may veto submissions by returning
a deny mask; ``after_complete`` observes finished lookups.  Both receive
plain SoA batch views, so a middleware that wants numpy speed gets it and
one that wants a Python loop over a handful of completions pays only for
what it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = [
    "CompletionBatch",
    "DomainACL",
    "Middleware",
    "SLOMiddleware",
    "SubmitBatch",
    "TracingMiddleware",
]


@dataclass
class SubmitBatch:
    """One submit call's lookups, pre-admission (aligned arrays)."""

    sources: np.ndarray  # uint64
    keys: np.ndarray  # uint64
    domains: List[str]  # per-lookup top-level domain label


@dataclass
class CompletionBatch:
    """One tick's finished lookups (aligned arrays).

    ``status`` holds the runtime's ``STATUS_*`` codes; ``success`` is the
    routing verdict (meaningful for served lookups, False for shed /
    denied / expired ones).  ``delivered`` is the SLO notion: routed to
    the key's responsible node within policy.
    """

    tickets: np.ndarray  # int64
    sources: np.ndarray  # uint64
    keys: np.ndarray  # uint64
    terminals: np.ndarray  # uint64
    hops: np.ndarray  # int64
    latency_ms: np.ndarray  # float64
    attempts: np.ndarray  # int32
    success: np.ndarray  # bool
    status: np.ndarray  # int16

    @property
    def size(self) -> int:
        return int(self.tickets.size)

    @property
    def delivered(self) -> np.ndarray:
        return self.success.copy()


class Middleware:
    """Base middleware: override either hook; both default to no-ops."""

    def before_submit(self, batch: SubmitBatch) -> Optional[np.ndarray]:
        """Return a bool deny mask (True = reject) or None to pass all."""
        return None

    def after_complete(self, batch: CompletionBatch) -> None:
        """Observe one tick's completions (counters, tracing, SLO...)."""


class DomainACL(Middleware):
    """Deny submissions from (or to keys under) blocked top-level domains.

    The paper's §4.1 access-control semantics at the serving edge: a
    blocked source domain never reaches the frontier at all — its lookups
    complete immediately with ``STATUS_DENIED``.
    """

    def __init__(self, deny_sources: Sequence[str] = ()) -> None:
        self.deny_sources = frozenset(deny_sources)

    def before_submit(self, batch: SubmitBatch) -> Optional[np.ndarray]:
        """Deny mask: True for lookups sourced in a blocked domain."""
        if not self.deny_sources:
            return None
        return np.asarray(
            [d in self.deny_sources for d in batch.domains], dtype=bool
        )


class TracingMiddleware(Middleware):
    """Mark submit/complete batches on the active `repro.obs` tracer."""

    def before_submit(self, batch: SubmitBatch) -> Optional[np.ndarray]:
        """Emit a ``serve.submit`` mark with the batch size; denies nothing."""
        tracer = obs_trace.active_tracer()
        if tracer is not None:
            with tracer.span("serve.submit", lookups=int(batch.sources.size)):
                pass
        return None

    def after_complete(self, batch: CompletionBatch) -> None:
        """Emit a ``serve.complete`` mark with size and delivered count."""
        tracer = obs_trace.active_tracer()
        if tracer is not None:
            with tracer.span(
                "serve.complete",
                lookups=batch.size,
                delivered=int(np.count_nonzero(batch.delivered)),
            ):
                pass


class SLOMiddleware(Middleware):
    """Feed completions into the standard ``slo.*`` instrument family.

    Uses the exact names :class:`repro.obs.slo.SLOReport` parses —
    ``slo.samples.<label>`` / ``slo.delivered.<label>`` counters plus the
    ``slo.lookup_ms.<label>`` histogram over delivered lookups — so a
    serving run lands in the same report as scenario and experiment runs.
    """

    def __init__(self, label: str) -> None:
        self.label = label

    def after_complete(self, batch: CompletionBatch) -> None:
        """Record samples/delivered counters and the delivered-ms histogram."""
        registry = obs_metrics.active_registry()
        if registry is None:
            return
        registry.counter(f"slo.samples.{self.label}").inc(batch.size)
        delivered = batch.delivered
        count = int(np.count_nonzero(delivered))
        registry.counter(f"slo.delivered.{self.label}").inc(count)
        if count:
            registry.histogram(f"slo.lookup_ms.{self.label}").observe_many(
                batch.latency_ms[delivered].tolist()
            )
