"""CLI for the batched lookup-serving runtime.

Quickstart (static net, closed loop)::

    python -m repro.serve --nodes 2048 --lookups 20000

The CI serving gate (live churn, every admitted lookup must complete)::

    python -m repro.serve --nodes 1024 --lookups 10000 --churn-every 5 \
        --max-attempts 3 --assert-complete
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from ..obs.metrics import collecting
from ..obs.slo import SLOReport
from .batcher import compile_protocol_view
from .middleware import DomainACL, SLOMiddleware, TracingMiddleware
from .policy import ServePolicy
from .runtime import ServeRuntime, run_closed_loop, run_open_loop
from .testbed import build_serving_net, crash_fraction, domain_labeler, lookup_workload


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve batched DHT lookups frontier-at-a-time.",
    )
    parser.add_argument("--nodes", type=int, default=2048)
    parser.add_argument("--lookups", type=int, default=20000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine", choices=("fast", "reference"), default=None,
        help="protocol engine for the testbed build",
    )
    parser.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: fixed concurrency; open: fixed offered rate",
    )
    parser.add_argument("--concurrency", type=int, default=1024)
    parser.add_argument(
        "--per-tick", type=int, default=512,
        help="open-loop offered lookups per tick",
    )
    parser.add_argument(
        "--no-latency", action="store_true",
        help="skip the transit-stub latency table (1 ms per hop)",
    )
    # Policy knobs.
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--max-attempts", type=int, default=1)
    parser.add_argument("--retry-alternates", action="store_true")
    parser.add_argument("--hedge-quantile", type=float, default=None)
    parser.add_argument("--hedge-min-ms", type=float, default=0.0)
    parser.add_argument("--admit-rate", type=float, default=None)
    parser.add_argument("--admit-burst", type=float, default=64.0)
    parser.add_argument(
        "--deny-domain", action="append", default=[],
        help="top-level domain to reject at submit (repeatable)",
    )
    # Churn.
    parser.add_argument(
        "--churn-every", type=int, default=0,
        help="crash nodes and recompile the view every N ticks (0 = off)",
    )
    parser.add_argument(
        "--churn-crash", type=int, default=8,
        help="nodes crashed per churn round",
    )
    parser.add_argument(
        "--assert-complete", action="store_true",
        help="exit nonzero unless every submitted lookup completed "
        "(the zero-lost-acknowledged-completions gate)",
    )
    parser.add_argument("--slo-report", action="store_true")
    return parser


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    print(
        f"building {args.nodes}-node serving testbed "
        f"(seed {args.seed})...", flush=True
    )
    net, latency = build_serving_net(
        args.nodes, args.seed, engine=args.engine,
        with_latency=not args.no_latency,
    )
    sources, keys = lookup_workload(net, args.lookups, args.seed)
    policy = ServePolicy(
        deadline_ms=(
            float("inf") if args.deadline_ms is None else args.deadline_ms
        ),
        max_attempts=args.max_attempts,
        retry_alternates=args.retry_alternates,
        hedge_quantile=args.hedge_quantile,
        hedge_min_ms=args.hedge_min_ms,
        admit_rate=args.admit_rate,
        admit_burst=args.admit_burst,
    )
    middlewares = [TracingMiddleware(), SLOMiddleware("serve.cli")]
    if args.deny_domain:
        middlewares.insert(0, DomainACL(args.deny_domain))
    compiled, alive = compile_protocol_view(net)
    runtime = ServeRuntime(
        compiled, alive,
        policy=policy, latency=latency,
        middlewares=middlewares, domain_of=domain_labeler(net),
    )

    churn_rng = random.Random(f"serve-cli-churn:{args.seed}")

    def on_tick(rt: ServeRuntime, tick: int) -> None:
        if args.churn_every and tick % args.churn_every == 0:
            live = sorted(net.live_view())
            victims = churn_rng.sample(
                live, min(args.churn_crash, max(len(live) - 8, 0))
            )
            for victim in victims:
                net.crash(victim)
            rt.set_view(*compile_protocol_view(net))

    started = time.perf_counter()
    with collecting() as registry:
        if args.mode == "closed":
            report = run_closed_loop(
                runtime, sources, keys,
                concurrency=args.concurrency, on_tick=on_tick,
            )
        else:
            report = run_open_loop(
                runtime, sources, keys,
                per_tick=args.per_tick, on_tick=on_tick,
            )
    elapsed = time.perf_counter() - started
    print(report.summary())
    served = int(report.counters["completed"])
    print(
        f"{served / max(elapsed, 1e-9):,.0f} lookups/s sustained "
        f"({elapsed:.2f} s wall)"
    )
    if args.slo_report:
        print(SLOReport.from_snapshot(registry.snapshot()).render())
    if args.assert_complete:
        submitted = report.counters["submitted"]
        if served != submitted or runtime.outstanding != 0:
            print(
                f"FAIL: {submitted} submitted but {served} completed "
                f"({runtime.outstanding} outstanding)",
                file=sys.stderr,
            )
            return 1
        print(f"OK: all {submitted} submitted lookups completed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
