"""Deterministic serving testbeds shared by the CLI, benchmark and tests.

One seeded recipe — FUZZ-style joins, stabilize to convergence, optional
transit-stub latency table — so the CLI quickstart, the sustained-
throughput benchmark and the differential tests all serve the *same*
network for the same ``(size, seed)`` and their numbers are comparable.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..core.idspace import IdSpace
from ..perf.dynamic import make_protocol
from ..perf.latency import LatencyTable
from ..topology.transit_stub import TopologyParams, TransitStubTopology
from ..verify.fuzz import FUZZ_PATHS

__all__ = [
    "SERVE_TOPOLOGY",
    "build_serving_net",
    "crash_fraction",
    "domain_labeler",
    "lookup_workload",
]

#: Router graph for serving latency: the scenario-sized transit-stub shape
#: (104 routers) — node counts scale independently of the router count.
SERVE_TOPOLOGY = TopologyParams(
    transit_domains=2,
    transit_per_domain=4,
    stub_domains_per_transit=3,
    stub_per_domain=4,
)


def build_serving_net(
    size: int,
    seed: int = 0,
    engine: Optional[str] = None,
    with_latency: bool = True,
):
    """A settled ``size``-node protocol net (plus its latency table).

    Returns ``(net, latency)``; ``latency`` is None when
    ``with_latency`` is off.  Identical ``(size, seed)`` yield
    bit-identical networks for any engine choice that is itself
    deterministic.
    """
    rng = random.Random(f"serve-testbed:{seed}")
    space = IdSpace(32)
    net = make_protocol(space, engine=engine)
    for node_id in space.random_ids(size, rng):
        net.join(node_id, FUZZ_PATHS[rng.randrange(len(FUZZ_PATHS))])
    net.stabilize_to_convergence()
    latency = None
    if with_latency:
        topo_rng = random.Random(f"serve-topology:{seed}")
        topology = TransitStubTopology(SERVE_TOPOLOGY, topo_rng)
        node_ids = sorted(net.nodes)
        for node_id in node_ids:
            topology.attach_node(node_id)
        latency = LatencyTable.from_topology(topology, node_ids)
    return net, latency


def domain_labeler(net) -> Callable[[int], str]:
    """Top-level-domain labeler for admission control / ACL middleware."""

    def domain_of(node_id: int) -> str:
        node = net.nodes.get(node_id)
        return str(node.path[0]) if node is not None else ""

    return domain_of


def lookup_workload(
    net, count: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` deterministic (live source, random key) lookup pairs."""
    rng = random.Random(f"serve-workload:{seed}")
    live = sorted(net.live_view())
    if not live:
        raise ValueError("no live nodes to serve from")
    sources = np.asarray(
        [live[rng.randrange(len(live))] for _ in range(count)], dtype=np.uint64
    )
    keys = np.asarray(
        [rng.randrange(net.space.size) for _ in range(count)], dtype=np.uint64
    )
    return sources, keys


def crash_fraction(net, fraction: float, seed: int = 0) -> Sequence[int]:
    """Crash a deterministic ``fraction`` of live nodes; returns victims.

    No stabilization afterwards: the degraded regime where serving policy
    (lost detection, retries, hedging) actually has work to do.
    """
    rng = random.Random(f"serve-crash:{seed}")
    live = sorted(net.live_view())
    victims = rng.sample(live, int(len(live) * fraction))
    for victim in victims:
        net.crash(victim)
    return victims
