"""Application-level multicast over a DHT (the paper's motivating use case).

Overlay multicast is the first application the paper's introduction cites
for hierarchical design, and Figure 9 measures its key cost: inter-domain
links in the dissemination tree.  This module provides the actual service:

- a *topic* is rendezvous-keyed: its root is the node responsible for the
  hash of the topic name;
- ``subscribe`` routes from the subscriber to the root and grafts the
  reverse path into the dissemination tree — Canon's convergence of
  inter-domain paths makes same-domain subscribers share their tree spine
  automatically;
- ``publish`` floods the tree from the root; the delivery report counts
  messages, per-level domain crossings, and latency to each subscriber.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.network import DHTNetwork
from ..core.routing import Route, route_ring

Router = Callable[[DHTNetwork, int, int], Route]
LatencyFn = Callable[[int, int], float]


@dataclass
class Topic:
    name: str
    key: int
    root: int
    subscribers: Set[int] = field(default_factory=set)
    #: node -> set of children edges in the dissemination tree (pointing
    #: away from the root, i.e. along reversed query paths).
    children: Dict[int, Set[int]] = field(default_factory=dict)

    def edge_count(self) -> int:
        """Number of edges currently in the dissemination tree."""
        return sum(len(kids) for kids in self.children.values())


@dataclass
class DeliveryReport:
    topic: str
    messages: int
    delivered: Set[int]
    max_depth: int
    interdomain_links: Dict[int, int]
    latencies: Dict[int, float]

    def delivered_all(self, expected: Set[int]) -> bool:
        """Whether every expected subscriber received the publication."""
        return expected <= self.delivered


class MulticastService:
    """Rendezvous-rooted multicast trees over any ring-metric network."""

    def __init__(
        self,
        network: DHTNetwork,
        router: Router = route_ring,
        latency_fn: Optional[LatencyFn] = None,
    ) -> None:
        network.require_built()
        self.network = network
        self.router = router
        self.latency_fn = latency_fn or (lambda a, b: 1.0)
        self.topics: Dict[str, Topic] = {}

    # ------------------------------------------------------------ membership

    def create_topic(self, name: str) -> Topic:
        """Register a topic; its root is the node responsible for hash(name)."""
        if name in self.topics:
            raise ValueError(f"topic {name!r} already exists")
        key = self.network.space.hash_key(name)
        root = self.network.responsible_node(key)
        topic = Topic(name=name, key=key, root=root)
        self.topics[name] = topic
        return topic

    def subscribe(self, node: int, name: str) -> Route:
        """Join the tree: graft the reverse of the query path to the root."""
        topic = self.topics[name]
        route = self.router(self.network, node, topic.key)
        if not route.success:
            raise RuntimeError(f"subscription routing failed for {node}")
        topic.subscribers.add(node)
        # Reverse each query edge (u -> v) into a tree edge (v -> u).
        for upstream, downstream in zip(route.path[1:], route.path):
            topic.children.setdefault(upstream, set()).add(downstream)
        return route

    def unsubscribe(self, node: int, name: str) -> None:
        """Leave the tree; prune branches that serve no subscriber."""
        topic = self.topics[name]
        topic.subscribers.discard(node)
        self._prune(topic)

    def _prune(self, topic: Topic) -> None:
        """Drop leaf branches with no subscriber beneath them."""
        changed = True
        while changed:
            changed = False
            for parent in list(topic.children):
                kids = topic.children[parent]
                for kid in list(kids):
                    if kid in topic.subscribers or topic.children.get(kid):
                        continue
                    kids.discard(kid)
                    changed = True
                if not kids:
                    del topic.children[parent]
                    changed = True

    # ------------------------------------------------------------ publishing

    def publish(self, name: str, depths: Sequence[int] = (1, 2, 3)) -> DeliveryReport:
        """Flood the tree from the root; returns the delivery report."""
        topic = self.topics[name]
        hierarchy = self.network.hierarchy
        messages = 0
        crossings = {depth: 0 for depth in depths}
        latencies: Dict[int, float] = {topic.root: 0.0}
        delivered: Set[int] = set()
        if topic.root in topic.subscribers:
            delivered.add(topic.root)
        queue = deque([(topic.root, 0)])
        max_depth = 0
        seen = {topic.root}
        while queue:
            node, depth = queue.popleft()
            max_depth = max(max_depth, depth)
            for child in topic.children.get(node, ()):
                if child in seen:
                    continue
                seen.add(child)
                messages += 1
                latencies[child] = latencies[node] + self.latency_fn(node, child)
                for level in depths:
                    if (
                        hierarchy.path_of(node)[:level]
                        != hierarchy.path_of(child)[:level]
                    ):
                        crossings[level] += 1
                if child in topic.subscribers:
                    delivered.add(child)
                queue.append((child, depth + 1))
        return DeliveryReport(
            topic=name,
            messages=messages,
            delivered=delivered,
            max_depth=max_depth,
            interdomain_links=crossings,
            latencies={n: latencies[n] for n in delivered},
        )

    # -------------------------------------------------------------- analysis

    def tree_edges(self, name: str) -> Set[Tuple[int, int]]:
        """The dissemination tree's directed (parent, child) edges."""
        topic = self.topics[name]
        return {
            (parent, child)
            for parent, kids in topic.children.items()
            for child in kids
        }
