"""Application-level multicast service over Canon DHTs (the paper's §1
motivating application; Figure 9 measures its inter-domain cost)."""

from .service import DeliveryReport, MulticastService, Topic

__all__ = ["DeliveryReport", "MulticastService", "Topic"]
