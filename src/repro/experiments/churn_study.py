"""Churn study: delivery and maintenance traffic vs churn intensity.

Not a paper figure — the paper treats dynamic maintenance analytically
(§2.3: O(log n) messages per join, leaf sets for departures).  This study
exercises that machinery end-to-end: a 150-node Crescendo absorbs rising
churn (joins + graceful leaves + crashes interleaved with a fixed
stabilization budget) while application lookups run, and we record the
delivery rate, per-join message cost, and whether the network converges
back to the static oracle.

Run: ``python -m repro.experiments churn --scale smoke``.
"""

from __future__ import annotations

from typing import Dict

from ..core.idspace import IdSpace
from ..analysis.tables import Table
from ..perf.dynamic import make_protocol
from ..simulation.churn import ChurnConfig, run_churn
from .common import get_scale, seeded_rng

PATHS = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("c", "x")]

INTENSITIES = {
    "light": ChurnConfig(joins=10, leaves=5, crashes=2, lookups=150),
    "moderate": ChurnConfig(joins=40, leaves=20, crashes=8, lookups=150),
    "heavy": ChurnConfig(joins=80, leaves=50, crashes=20, lookups=150),
}


def measurements(scale: str = "smoke") -> Dict[str, Dict[str, float]]:
    """intensity -> delivery/traffic/convergence metrics."""
    size = 150 if scale == "smoke" else 400
    out: Dict[str, Dict[str, float]] = {}
    for label, config in INTENSITIES.items():
        rng = seeded_rng("churn", label, size)
        space = IdSpace()
        net = make_protocol(space)
        for node_id in space.random_ids(size, rng):
            net.join(node_id, PATHS[rng.randrange(len(PATHS))])
        report = run_churn(net, rng, PATHS, config)
        total_events = config.joins + config.leaves + config.crashes
        out[label] = {
            "events": float(total_events),
            "delivery_rate": report.delivery_rate,
            "join_msgs_per_join": report.join_messages / max(1, config.joins),
            "stabilize_msgs": float(report.stabilize_messages),
            "converged": float(report.converged_to_oracle),
        }
    return out


def run(scale: str = "smoke") -> Table:
    """Render the churn-intensity table."""
    data = measurements(scale)
    table = Table(
        "Churn study — delivery and maintenance traffic vs intensity",
        ["intensity", "events", "delivery", "msgs/join", "stabilize msgs", "converged"],
    )
    for label in ("light", "moderate", "heavy"):
        row = data[label]
        table.add_row(
            label,
            int(row["events"]),
            row["delivery_rate"],
            row["join_msgs_per_join"],
            int(row["stabilize_msgs"]),
            bool(row["converged"]),
        )
    return table
