"""Churn study: delivery, maintenance traffic and lookup latency vs churn.

Not a paper figure — the paper treats dynamic maintenance analytically
(§2.3: O(log n) messages per join, leaf sets for departures).  This study
exercises that machinery end-to-end: a 150-node Crescendo absorbs rising
churn (joins + graceful leaves + crashes interleaved with a fixed
stabilization budget) while application lookups run, and we record the
delivery rate, per-join message cost, whether the network converges back
to the static oracle, and — through a small transit-stub topology serving
as the latency oracle — p50/p99 lookup milliseconds under churn.  The
protocol's abstract domain hierarchy (``PATHS``) is unchanged; the
topology only prices hops, with joining nodes attached on the fly.

Run: ``python -m repro.experiments churn --scale smoke``.  With a metrics
registry active (``--metrics``/``--slo``), per-intensity latencies are
recorded as ``slo.*`` instruments under the ``churn.<intensity>`` family.
"""

from __future__ import annotations

from typing import Dict

from ..core.idspace import IdSpace
from ..analysis.tables import Table
from ..obs import metrics as obs_metrics
from ..perf.dynamic import make_protocol
from ..simulation.churn import ChurnConfig, run_churn
from ..topology.transit_stub import TopologyParams, TransitStubTopology
from .common import get_scale, seeded_rng

PATHS = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("c", "x")]

INTENSITIES = {
    "light": ChurnConfig(joins=10, leaves=5, crashes=2, lookups=150),
    "moderate": ChurnConfig(joins=40, leaves=20, crashes=8, lookups=150),
    "heavy": ChurnConfig(joins=80, leaves=50, crashes=20, lookups=150),
}

#: Small transit-stub graph (120 routers) — ample stub diversity for a few
#: hundred nodes without the 2040-router all-pairs cost per intensity.
TOPOLOGY_PARAMS = TopologyParams(
    transit_domains=2,
    transit_per_domain=5,
    stub_domains_per_transit=2,
    stub_per_domain=11,
)


def measurements(scale: str = "smoke") -> Dict[str, Dict[str, float]]:
    """intensity -> delivery/traffic/convergence/latency metrics."""
    size = 150 if scale == "smoke" else 400
    registry = obs_metrics.active_registry()
    out: Dict[str, Dict[str, float]] = {}
    for label, config in INTENSITIES.items():
        rng = seeded_rng("churn", label, size)
        space = IdSpace()
        topology = TransitStubTopology(
            TOPOLOGY_PARAMS, rng=seeded_rng("churn-topo", label, size)
        )
        net = make_protocol(space)
        for node_id in space.random_ids(size, rng):
            topology.attach_node(node_id)
            net.join(node_id, PATHS[rng.randrange(len(PATHS))])
        report = run_churn(
            net,
            rng,
            PATHS,
            config,
            latency=topology,
            attach=topology.attach_node,
        )
        if registry is not None:
            family = f"churn.{label}"
            registry.counter(f"slo.samples.{family}").inc(report.lookups_attempted)
            registry.counter(f"slo.delivered.{family}").inc(report.lookups_delivered)
            if report.lookup_ms:
                registry.histogram(f"slo.lookup_ms.{family}").observe_many(
                    report.lookup_ms
                )
                by_level: Dict[int, list] = {}
                for level, ms in zip(report.lookup_levels, report.lookup_ms):
                    by_level.setdefault(level, []).append(ms)
                for level, values in sorted(by_level.items()):
                    registry.histogram(
                        f"slo.lookup_ms.{family}.L{level}"
                    ).observe_many(values)
        total_events = config.joins + config.leaves + config.crashes
        out[label] = {
            "events": float(total_events),
            "delivery_rate": report.delivery_rate,
            "join_msgs_per_join": report.join_messages / max(1, config.joins),
            "stabilize_msgs": float(report.stabilize_messages),
            "converged": float(report.converged_to_oracle),
            "p50_ms": report.p50_ms,
            "p99_ms": report.p99_ms,
        }
    return out


def run(scale: str = "smoke") -> Table:
    """Render the churn-intensity table."""
    data = measurements(scale)
    table = Table(
        "Churn study — delivery, maintenance traffic and latency vs intensity",
        [
            "intensity",
            "events",
            "delivery",
            "msgs/join",
            "stabilize msgs",
            "converged",
            "p50 ms",
            "p99 ms",
        ],
    )
    for label in ("light", "moderate", "heavy"):
        row = data[label]
        table.add_row(
            label,
            int(row["events"]),
            row["delivery_rate"],
            row["join_msgs_per_join"],
            int(row["stabilize_msgs"]),
            bool(row["converged"]),
            row["p50_ms"],
            row["p99_ms"],
        )
    return table
