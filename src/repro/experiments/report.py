"""One-shot report generation: every experiment, one markdown document.

``python -m repro.experiments report --scale small`` regenerates all the
paper's figures plus the ablation/caching/churn studies and writes them to
``RESULTS.md`` — the raw material behind EXPERIMENTS.md.
"""

from __future__ import annotations

import logging
import time
from pathlib import Path
from typing import Optional

logger = logging.getLogger("repro.experiments.report")


def generate(scale: str = "smoke", out_path: Optional[str] = None) -> str:
    """Run every registered experiment; return (and optionally write) markdown."""
    from . import EXPERIMENTS

    sections = [
        "# Canon reproduction — measured results",
        "",
        f"Scale: `{scale}`.  Deterministic seeds; regenerate with "
        f"`python -m repro.experiments report --scale {scale}`.",
        "",
    ]
    for name in sorted(EXPERIMENTS):
        logger.info("running %s at %s scale", name, scale)
        start = time.time()
        table = EXPERIMENTS[name].run(scale)
        sections.append(table.to_markdown())
        sections.append(f"\n*({name}: {time.time() - start:.1f}s)*\n")
    text = "\n".join(sections)
    if out_path is not None:
        Path(out_path).write_text(text)
    return text
