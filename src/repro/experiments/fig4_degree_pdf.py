"""Figure 4: PDF of the number of links per node (32K-node network).

Paper result: as the number of hierarchy levels grows the distribution
"flattens out" to the *left* of the mean (more nodes with fewer links —
again the Jensen effect), while the maximum degree barely increases.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.tables import Table
from ..perf.executor import map_points
from .common import build_crescendo, get_scale, seeded_rng


def _grid_point(point: Tuple[int, int]) -> Dict[int, float]:
    """Degree PDF at one (size, levels) grid point (worker-safe)."""
    size, levels = point
    net = build_crescendo(
        size, levels, seeded_rng("fig4", levels), cache_token=("fig4", size, levels)
    )
    return net.degree_distribution()


def distributions(
    scale: str = "small", jobs: Optional[int] = None
) -> Dict[int, Dict[int, float]]:
    """levels -> degree -> fraction of nodes."""
    cfg = get_scale(scale)
    points = [(cfg.fig4_size, levels) for levels in cfg.fig3_levels]
    values = map_points(_grid_point, points, jobs=jobs)
    return {levels: pdf for (_, levels), pdf in zip(points, values)}


def run(scale: str = "small", jobs: Optional[int] = None) -> Table:
    """Render the Figure 4 degree-PDF table."""
    cfg = get_scale(scale)
    dists = distributions(scale, jobs=jobs)
    degrees = sorted({d for pdf in dists.values() for d in pdf})
    table = Table(
        f"Figure 4 — PDF of #links/node ({cfg.fig4_size}-node network)",
        ["#links"] + [f"levels={lv}" for lv in sorted(dists)],
    )
    for degree in degrees:
        table.add_row(
            degree, *(dists[lv].get(degree, 0.0) for lv in sorted(dists))
        )
    return table
