"""Figure 4: PDF of the number of links per node (32K-node network).

Paper result: as the number of hierarchy levels grows the distribution
"flattens out" to the *left* of the mean (more nodes with fewer links —
again the Jensen effect), while the maximum degree barely increases.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import Table
from .common import build_crescendo, get_scale, seeded_rng


def distributions(scale: str = "small") -> Dict[int, Dict[int, float]]:
    """levels -> degree -> fraction of nodes."""
    cfg = get_scale(scale)
    out: Dict[int, Dict[int, float]] = {}
    for levels in cfg.fig3_levels:
        net = build_crescendo(cfg.fig4_size, levels, seeded_rng("fig4", levels))
        out[levels] = net.degree_distribution()
    return out


def run(scale: str = "small") -> Table:
    """Render the Figure 4 degree-PDF table."""
    cfg = get_scale(scale)
    dists = distributions(scale)
    degrees = sorted({d for pdf in dists.values() for d in pdf})
    table = Table(
        f"Figure 4 — PDF of #links/node ({cfg.fig4_size}-node network)",
        ["#links"] + [f"levels={lv}" for lv in sorted(dists)],
    )
    for degree in degrees:
        table.add_row(
            degree, *(dists[lv].get(degree, 0.0) for lv in sorted(dists))
        )
    return table
