"""The scenario zoo as an experiment: the matrix summary table.

Wraps :func:`repro.scenarios.runner.run_matrix` in the standard
experiment interface (``run(scale) -> Table`` / ``measurements(scale) ->
dict``) so ``python -m repro.experiments scenarios`` reports the named
production-traffic scenarios alongside the paper figures.  The full
artifact (family table, JSON, markdown, fixtures, negative controls)
lives behind ``python -m repro.scenarios``.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import Table
from ..scenarios.runner import run_matrix

#: experiment scale -> scenario scale ("smoke" keeps the gating jobs fast).
_SCALES = {"smoke": "smoke", "small": "smoke", "paper": "full"}


def run(scale: str = "small") -> Table:
    """The scenario-matrix summary table at the mapped scale."""
    return run_matrix(scale=_SCALES.get(scale, "smoke")).summary_table()


def measurements(scale: str = "small") -> Dict[str, object]:
    """The full matrix document (what the JSON artifact contains)."""
    return run_matrix(scale=_SCALES.get(scale, "smoke")).to_dict()
