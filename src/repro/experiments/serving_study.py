"""Serving-policy study: what deadline/retry/hedge knobs buy under failures.

A closed-loop burst is served while nodes keep crashing *mid-run* (a
deterministic slice every few ticks, view recompiled each time — the
regime where in-flight lookups genuinely get lost), once per policy: no
policy, bounded retries from the source, retries via alternate first
hops, hedged requests, and a tight deadline.  The table reports delivered
fraction, loss/expiry accounting and tail latency per policy — the
serving-layer analogue of the in-flight crash study.

Run: ``python -m repro.experiments serve --scale smoke``.
"""

from __future__ import annotations

import random
from typing import Dict

from ..analysis.tables import Table
from ..serve import ServePolicy, ServeRuntime, compile_protocol_view, run_closed_loop
from ..serve.testbed import build_serving_net, lookup_workload
from .common import get_scale

POLICIES = {
    "no policy": ServePolicy(),
    "retry x3 (same source)": ServePolicy(max_attempts=3),
    "retry x3 (alternates)": ServePolicy(max_attempts=3, retry_alternates=True),
    "hedge p90": ServePolicy(hedge_quantile=0.9, hedge_min_ms=4.0),
    "deadline 40 ticks": ServePolicy(deadline_ms=40.0),
}


def measurements(scale: str = "smoke") -> Dict[str, Dict[str, float]]:
    """policy label -> serving outcome stats on the degraded net."""
    size = 512 if scale == "smoke" else 2048
    lookups = 2000 if scale == "smoke" else 8000
    out: Dict[str, Dict[str, float]] = {}
    for label, policy in POLICIES.items():
        net, _ = build_serving_net(size, seed=11, with_latency=False)
        sources, keys = lookup_workload(net, lookups, seed=11)
        runtime = ServeRuntime(*compile_protocol_view(net), policy=policy)
        churn_rng = random.Random("serving-study-churn")

        def on_tick(rt: ServeRuntime, tick: int) -> None:
            # Same crash sequence for every policy: one seeded slice of
            # the live population every third tick, view recompiled.
            if tick % 3 == 0:
                live = sorted(net.live_view())
                for victim in churn_rng.sample(live, min(size // 64, len(live) - 8)):
                    net.crash(victim)
                rt.set_view(*compile_protocol_view(net))

        report = run_closed_loop(
            runtime, sources, keys, concurrency=512, on_tick=on_tick
        )
        counters = report.counters
        out[label] = {
            "delivered": counters["delivered"] / max(counters["completed"], 1),
            "lost": float(counters["lost"]),
            "expired": float(counters["expired"]),
            "retries": float(counters["retries"]),
            "hedges": float(counters["hedges"]),
            "p99_ms": report.quantile_ms(0.99),
        }
    return out


def run(scale: str = "smoke") -> Table:
    """Render the policy vs serving-outcome table."""
    data = measurements(scale)
    table = Table(
        "Serving policy under failures — delivery, losses and tails",
        ["policy", "delivered", "lost", "expired", "retries", "hedges", "p99 ms"],
    )
    for label in POLICIES:
        row = data[label]
        table.add_row(
            label,
            round(row["delivered"], 4),
            int(row["lost"]),
            int(row["expired"]),
            int(row["retries"]),
            int(row["hedges"]),
            round(row["p99_ms"], 1),
        )
    return table
