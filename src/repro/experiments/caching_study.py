"""Caching study (Section 4.2's qualitative comparison, quantified).

A Zipf-popular key workload with domain-local access skew runs against two
caching policies on the *same* Crescendo network:

- **proxy** (:class:`~repro.storage.caching.CachingStore`): one copy per
  crossed hierarchy level, at the convergence proxy (the paper's design);
- **path** (:class:`~repro.storage.path_caching.PathCachingStore`): a copy
  at every node on each miss path (the flat-DHT baseline the paper argues
  against).

Reported: cache hit rate, mean lookup hops, and the number of copies created
— the paper's claim is that proxy caching matches (or beats) path caching's
hit behaviour at a small fraction of its copy overhead, because converged
paths make every copy maximally reusable.

Run: ``python -m repro.experiments caching --scale smoke``.
"""

from __future__ import annotations

import statistics
from typing import Dict, Tuple

from ..analysis.tables import Table
from ..core.idspace import IdSpace
from ..core.hierarchy import build_uniform_hierarchy
from ..dhts.crescendo import CrescendoNetwork
from ..storage.caching import CachingStore
from ..storage.path_caching import PathCachingStore
from ..storage.store import HierarchicalStore
from ..workloads.queries import zipf_key_workload
from .common import get_scale, seeded_rng


def measurements(scale: str = "smoke") -> Dict[str, Dict[str, float]]:
    """policy -> {hit_rate, mean_hops, copies, copies_per_hit}."""
    cfg = get_scale(scale)
    size = 512 if scale == "smoke" else 2048
    universe = 60
    # Enough queries to reach the steady state: path caching's copy set is a
    # strict superset of proxy caching's (converged paths pass the proxies),
    # so its hit rate can only converge from above as cold misses amortise.
    queries = max(1500, cfg.route_samples * 4)

    rng = seeded_rng("cache-net", size)
    space = IdSpace()
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, 4, 3, rng)
    network = CrescendoNetwork(space, hierarchy).build()

    # Content: Zipf-popular global keys, inserted by random owners.
    keys = [f"object-{i}" for i in range(universe)]

    def fresh_store() -> HierarchicalStore:
        store = HierarchicalStore(network)
        owner_rng = seeded_rng("cache-owners", size)
        for key in keys:
            store.put(owner_rng.choice(ids), key, f"value-of-{key}")
        return store

    # Workload: queriers cluster in domains (locality of access — "the same
    # key queried by a node m is likely to be queried by other nodes close to
    # m in the hierarchy") and keys are Zipf-popular.
    workload_rng = seeded_rng("cache-work", size)
    key_choices = zipf_key_workload(universe, queries, workload_rng)
    hot_domains = [
        hierarchy.path_of(workload_rng.choice(ids))[:1] for _ in range(2)
    ]
    queriers = []
    for _ in range(queries):
        if workload_rng.random() < 0.8:
            members = hierarchy.members(
                hot_domains[workload_rng.randrange(len(hot_domains))]
            )
            queriers.append(workload_rng.choice(members))
        else:
            queriers.append(workload_rng.choice(ids))

    results: Dict[str, Dict[str, float]] = {}
    for label, factory in (
        ("proxy", lambda s: CachingStore(s, capacity=64)),
        ("path", lambda s: PathCachingStore(s, capacity=64)),
    ):
        store = factory(fresh_store())
        hops = []
        for querier, key_index in zip(queriers, key_choices):
            result = store.get(querier, keys[key_index])
            assert result.found, (label, keys[key_index])
            hops.append(result.hops)
        stats = store.stats
        copies = (
            store.stats.insertions
            if label == "proxy"
            else store.stats.copies_created
        )
        results[label] = {
            "hit_rate": stats.hit_rate,
            "mean_hops": statistics.mean(hops),
            "copies": float(copies),
            "copies_per_hit": copies / max(1, stats.hits),
        }
    return results


def run(scale: str = "smoke") -> Table:
    """Render the proxy-vs-path caching comparison table."""
    data = measurements(scale)
    table = Table(
        "Caching study — proxy (Canon) vs path (flat baseline)",
        ["policy", "hit rate", "mean hops", "copies created", "copies/hit"],
    )
    for label in ("proxy", "path"):
        row = data[label]
        table.add_row(
            label, row["hit_rate"], row["mean_hops"], row["copies"],
            row["copies_per_hit"],
        )
    return table
