"""Figure 9 (table): inter-domain links in a 1000-source multicast tree.

1000 random sources route a query to one common random destination; the
union of the paths is a multicast tree (data flows along the reversed query
paths).  The table counts the tree's *inter-domain* links for domains
defined at hierarchy levels 1-3.  Paper result (32K nodes): Crescendo uses
only ~1/44 of Chord (Prox.)'s inter-domain links at the top level and ~15%
at the stub-domain level (19/39/353.7 vs 884.9/1273.7/2502.7).
"""

from __future__ import annotations

import statistics
from typing import Dict, Tuple

from ..analysis.tables import Table
from ..core.routing import route_ring
from ..proximity.groups import route_grouped
from ..workloads.multicast import multicast_interdomain_profile
from .common import build_topology_setup, get_scale, seeded_rng

SYSTEMS = (
    ("Crescendo", "crescendo", route_ring),
    ("Chord (Prox.)", "chord_prox", route_grouped),
)

DEPTHS = (1, 2, 3)
REPEATS = 3


def measurements(scale: str = "small") -> Dict[Tuple[str, int], float]:
    """(system, domain level) -> expected #inter-domain links in the tree."""
    cfg = get_scale(scale)
    setup = build_topology_setup(cfg.fig7_size, "fig9")
    out: Dict[Tuple[str, int], list] = {
        (label, depth): [] for label, _, _ in SYSTEMS for depth in DEPTHS
    }
    for repeat in range(REPEATS):
        rng = seeded_rng("fig9", repeat)
        sources = rng.sample(setup.node_ids, min(cfg.multicast_sources, len(setup.node_ids) - 1))
        dest = rng.choice([n for n in setup.node_ids if n not in set(sources)])
        for label, attr, router in SYSTEMS:
            net = getattr(setup, attr)
            profile = multicast_interdomain_profile(net, router, sources, dest, DEPTHS)
            for depth, count in profile.items():
                out[(label, depth)].append(count)
    return {key: statistics.mean(vals) for key, vals in out.items()}


def run(scale: str = "small") -> Table:
    """Render the Figure 9 inter-domain-links table with ratios."""
    data = measurements(scale)
    table = Table(
        "Figure 9 — #inter-domain links in the multicast tree",
        ["domain level"] + [label for label, _, _ in SYSTEMS] + ["ratio"],
    )
    for depth in DEPTHS:
        crescendo = data[("Crescendo", depth)]
        chord = data[("Chord (Prox.)", depth)]
        ratio = chord / crescendo if crescendo else float("inf")
        table.add_row(depth, crescendo, chord, ratio)
    return table
