"""The full zoo: every flat DHT vs its Canonical version, one table.

The paper's §3 thesis, quantified across *all five* families at once: each
Canonical construction keeps its flat sibling's ~log2(n) state budget and
near-identical hop count, while adding the hierarchy's locality.  We also
report the intra-domain hop fraction — the share of each route spent inside
the endpoints' lowest common domain's side of the network — which is where
the Canon versions separate from the flat ones.

Run: ``python -m repro.experiments zoo --scale smoke``.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, Tuple

from ..analysis.tables import Table
from ..core.idspace import IdSpace
from ..core.hierarchy import build_uniform_hierarchy
from ..core.routing import route_ring, route_xor
from ..dhts.cacophony import CacophonyNetwork
from ..dhts.chord import ChordNetwork
from ..dhts.crescendo import CrescendoNetwork
from ..dhts.kademlia import KademliaNetwork
from ..dhts.kandy import KandyNetwork
from ..dhts.ndchord import NDChordNetwork, NDCrescendoNetwork
from ..dhts.symphony import SymphonyNetwork
from .common import get_scale, seeded_rng

FAMILIES = ("chord", "symphony", "ndchord", "kademlia")


def _build(family: str, space, flat_h, deep_h, rng):
    if family == "chord":
        return (
            ChordNetwork(space, flat_h).build(),
            CrescendoNetwork(space, deep_h).build(),
            route_ring,
        )
    if family == "symphony":
        return (
            SymphonyNetwork(space, flat_h, rng).build(),
            CacophonyNetwork(space, deep_h, rng).build(),
            route_ring,
        )
    if family == "ndchord":
        return (
            NDChordNetwork(space, flat_h, rng).build(),
            NDCrescendoNetwork(space, deep_h, rng).build(),
            route_ring,
        )
    if family == "kademlia":
        return (
            KademliaNetwork(space, flat_h, rng).build(),
            KandyNetwork(space, deep_h, rng).build(),
            route_xor,
        )
    raise ValueError(f"unknown family {family!r}")


def measurements(
    scale: str = "smoke",
) -> Dict[Tuple[str, str], Tuple[float, float, float]]:
    """(family, variant) -> (avg degree, avg hops, locality fraction).

    Locality fraction: over same-depth-1-domain pairs, the share of route
    hops that stay inside that domain.
    """
    cfg = get_scale(scale)
    size = 800 if scale == "smoke" else 2000
    rng = seeded_rng("zoo", size)
    space = IdSpace()
    ids = space.random_ids(size, rng)
    flat_h = build_uniform_hierarchy(ids, 5, 1, seeded_rng("zoo-h", 1))
    deep_h = build_uniform_hierarchy(ids, 5, 3, seeded_rng("zoo-h", 3))

    out: Dict[Tuple[str, str], Tuple[float, float, float]] = {}
    pair_rng = seeded_rng("zoo-pairs", size)
    pairs = [tuple(pair_rng.sample(ids, 2)) for _ in range(cfg.route_samples)]
    for family in FAMILIES:
        flat_net, canon_net, router = _build(
            family, space, flat_h, deep_h, seeded_rng("zoo-b", family)
        )
        for variant, net, hierarchy in (
            ("flat", flat_net, flat_h),
            ("canon", canon_net, deep_h),
        ):
            hops = []
            for a, b in pairs:
                result = router(net, a, b)
                if result.success and result.terminal == b:
                    hops.append(result.hops)
            locality = _locality_fraction(net, deep_h, router, pair_rng)
            out[(family, variant)] = (
                net.average_degree(),
                statistics.mean(hops),
                locality,
            )
    return out


def _locality_fraction(net, hierarchy, router, rng, trials: int = 120) -> float:
    fractions = []
    done = 0
    ids = net.node_ids
    while done < trials:
        a = rng.choice(ids)
        domain = hierarchy.path_of(a)[:1]
        peers = [m for m in hierarchy.members(domain) if m != a]
        if not peers:
            continue
        b = rng.choice(peers)
        result = router(net, a, b)
        if not result.success:
            continue
        inside = sum(
            1 for n in result.path if hierarchy.path_of(n)[:1] == domain
        )
        fractions.append(inside / len(result.path))
        done += 1
    return statistics.mean(fractions)


def run(scale: str = "smoke") -> Table:
    """Render the flat-vs-Canonical comparison across all families."""
    data = measurements(scale)
    table = Table(
        "The zoo — flat vs Canonical, all families",
        ["family", "variant", "avg degree", "avg hops", "intra-domain fraction"],
    )
    for family in FAMILIES:
        for variant in ("flat", "canon"):
            degree, hops, locality = data[(family, variant)]
            table.add_row(family, variant, degree, hops, locality)
    return table
