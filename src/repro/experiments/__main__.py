"""CLI: regenerate any of the paper's figures/tables.

Examples::

    python -m repro.experiments fig3 --scale small
    python -m repro.experiments all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Canon paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report", "export"],
        help="which figure to regenerate ('all' runs every one; 'report' "
        "writes RESULTS.md; 'export' writes one CSV per experiment)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("smoke", "small", "paper"),
        help="parameter grid: smoke (seconds), small (default), paper (full grid)",
    )
    parser.add_argument(
        "--out",
        default="RESULTS.md",
        help="output path for the 'report' command (default RESULTS.md)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from .report import generate

        generate(args.scale, args.out)
        print(f"wrote {args.out} ({args.scale} scale)")
        return 0

    if args.experiment == "export":
        from pathlib import Path

        out_dir = Path(args.out if args.out != "RESULTS.md" else "results")
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in sorted(EXPERIMENTS):
            table = EXPERIMENTS[name].run(args.scale)
            path = out_dir / f"{name}.csv"
            path.write_text(table.to_csv() + "\n")
            print(f"wrote {path}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        table = EXPERIMENTS[name].run(args.scale)
        print(table.render())
        print(f"[{name} @ {args.scale}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
