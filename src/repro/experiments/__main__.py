"""CLI: regenerate any of the paper's figures/tables.

Examples::

    python -m repro.experiments fig3 --scale small
    python -m repro.experiments all --scale smoke
    python -m repro.experiments fig5 --scale smoke \\
        --trace t.jsonl --metrics m.json --profile -v

Result tables go to stdout; progress narration goes through the
``repro.experiments`` logger (stderr; ``-v`` for INFO, ``-vv`` for DEBUG,
``-q`` for errors only).  ``--trace`` records every sampled route (hop
annotated with hierarchy level/domain) plus one span per experiment as
JSONL; ``--metrics`` writes hop/latency histograms and message counts by
type as JSON; ``--profile`` reports build vs. route vs. analysis wall time
per run.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.profile import PROFILER
from ..perf import arena as perf_arena
from ..perf import build as perf_build
from ..perf import dynamic as perf_dynamic
from ..perf import cache as perf_cache
from ..perf import executor as perf_executor
from . import EXPERIMENTS

logger = logging.getLogger("repro.experiments")


def _configure_logging(verbosity: int) -> None:
    """Map -q/-v/-vv counts onto the root ``repro`` logger level."""
    level = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}.get(
        verbosity, logging.DEBUG
    )
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.handlers[:] = [handler]
    root.setLevel(level)


def _profile_report(name: str, total: float) -> str:
    """Build/route/analysis breakdown of one experiment run."""
    build = PROFILER.totals.get("build", 0.0)
    route = PROFILER.totals.get("route", 0.0)
    analysis = max(0.0, total - build - route)
    return (
        f"[profile {name}] total {total:.2f}s = "
        f"build {build:.2f}s + route {route:.2f}s + analysis {analysis:.2f}s"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Canon paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report", "export"],
        help="which figure to regenerate ('all' runs every one; 'report' "
        "writes RESULTS.md; 'export' writes one CSV per experiment)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("smoke", "small", "paper"),
        help="parameter grid: smoke (seconds), small (default), paper (full grid)",
    )
    parser.add_argument(
        "--out",
        default="RESULTS.md",
        help="output path for the 'report' command (default RESULTS.md)",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="record spans and hop-annotated routes; write JSONL here "
        "(convert for chrome://tracing with repro.obs.trace.jsonl_to_chrome)",
    )
    parser.add_argument(
        "--metrics",
        metavar="OUT.json",
        help="collect counters/histograms (hops, latency, messages by type); "
        "write a metrics snapshot JSON here",
    )
    parser.add_argument(
        "--slo",
        metavar="OUT.json",
        help="write the family x level SLO table (p50/p95/p99 lookup ms, "
        "stretch, availability) built from the run's metrics; implies "
        "metrics collection (see also 'python -m repro.obs report')",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report build vs. route vs. analysis wall time per run (stderr)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the parameter grids (0 = all cores; "
        "results are bit-identical to a serial run)",
    )
    parser.add_argument(
        "--arena",
        action="store_true",
        help="run grid workers against shared-memory arenas: the parent "
        "builds each network once and workers attach zero-copy (results "
        "are bit-identical to the default per-worker-build grids; "
        "currently wired for fig5 and fig6)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="rebuild every network instead of using the on-disk "
        "built-network cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="built-network cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro-canon/networks)",
    )
    parser.add_argument(
        "--build",
        default="auto",
        choices=("auto", "numpy", "python"),
        help="link-table construction path: auto (bulk builders above the "
        "size threshold; default), numpy (force bulk), python (force the "
        "scalar reference builders)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "fast", "reference"),
        help="dynamic-maintenance engine for churn simulations: auto "
        "(array-backed fast engine; default), fast (force it), reference "
        "(the message-by-message reference implementation)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the repro.verify invariant registry on every network "
        "built by the experiment helpers (fails fast on a violation)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="log errors only",
    )
    args = parser.parse_args(argv)
    _configure_logging(-1 if args.quiet else args.verbose)

    tracer = obs_trace.activate(obs_trace.Tracer()) if args.trace else None
    registry = (
        obs_metrics.activate(obs_metrics.MetricsRegistry())
        if (args.metrics or args.slo)
        else None
    )
    cache = None
    if not args.no_cache:
        cache = perf_cache.enable(perf_cache.NetworkCache(args.cache_dir))
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    perf_executor.set_default_jobs(args.jobs)
    perf_arena.set_default_arena(args.arena)
    perf_build.set_build_mode(args.build)
    perf_dynamic.set_engine_mode(args.engine)
    if args.verify:
        from ..verify.invariants import set_auto_verify

        set_auto_verify(True)
    try:
        exit_code = _dispatch(args)
    finally:
        if args.verify:
            set_auto_verify(False)
        perf_build.set_build_mode("auto")
        perf_dynamic.set_engine_mode("auto")
        perf_executor.set_default_jobs(1)
        perf_arena.set_default_arena(False)
        if cache is not None:
            stats = cache.stats()
            logger.info(
                "network cache (%s): %d hits, %d misses, %d stores",
                cache.root,
                stats["hits"],
                stats["misses"],
                stats["stores"],
            )
            perf_cache.disable()
        if tracer is not None:
            tracer.export_jsonl(args.trace)
            logger.info("wrote %d trace records to %s", len(tracer), args.trace)
            obs_trace.deactivate()
        if registry is not None:
            if args.metrics:
                registry.export_json(args.metrics)
                logger.info("wrote metrics snapshot to %s", args.metrics)
            if args.slo:
                from ..obs.slo import SLOReport

                slo = SLOReport.from_snapshot(registry.snapshot())
                with open(args.slo, "w") as fh:
                    fh.write(slo.to_json() + "\n")
                logger.info("wrote %d SLO rows to %s", len(slo), args.slo)
            obs_metrics.deactivate()
    return exit_code


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command with observability already activated."""
    if args.experiment == "report":
        from .report import generate

        generate(args.scale, args.out)
        print(f"wrote {args.out} ({args.scale} scale)")
        return 0

    if args.experiment == "export":
        from pathlib import Path

        out_dir = Path(args.out if args.out != "RESULTS.md" else "results")
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in sorted(EXPERIMENTS):
            table = EXPERIMENTS[name].run(args.scale)
            path = out_dir / f"{name}.csv"
            path.write_text(table.to_csv() + "\n")
            logger.info("wrote %s", path)
        print(f"wrote {len(EXPERIMENTS)} CSV files to {out_dir}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tracer = obs_trace.active_tracer()
    for name in names:
        logger.info("running %s at %s scale", name, args.scale)
        PROFILER.reset()
        start = time.time()
        if tracer is not None:
            with tracer.span(name, scale=args.scale):
                table = EXPERIMENTS[name].run(args.scale)
        else:
            table = EXPERIMENTS[name].run(args.scale)
        elapsed = time.time() - start
        print(table.render())
        logger.info("%s @ %s: %.1fs", name, args.scale, elapsed)
        if args.profile:
            print(_profile_report(name, elapsed), file=sys.stderr)
            logger.debug("phase detail:\n%s", PROFILER.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
