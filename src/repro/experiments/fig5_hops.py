"""Figure 5: average number of routing hops vs network size.

Paper result: hops are ~0.5*log2(n) + c for a small constant c that grows
with hierarchy depth, by at most 0.7 regardless of the number of levels —
routing in Crescendo is almost as efficient as in flat Chord.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..analysis.metrics import sample_routing
from ..analysis.tables import Table
from .common import build_crescendo, get_scale, seeded_rng


def measurements(scale: str = "small") -> Dict[Tuple[int, int], float]:
    """(n, levels) -> mean routing hops."""
    cfg = get_scale(scale)
    out: Dict[Tuple[int, int], float] = {}
    for size in cfg.fig3_sizes:
        for levels in cfg.fig3_levels:
            rng = seeded_rng("fig5", size, levels)
            net = build_crescendo(size, levels, rng)
            stats = sample_routing(net, rng, samples=cfg.route_samples)
            if stats.success_rate != 1.0:
                raise AssertionError(
                    f"routing failures at n={size}, levels={levels}"
                )
            out[(size, levels)] = stats.mean_hops
    return out


def run(scale: str = "small") -> Table:
    """Render the Figure 5 table (avg routing hops vs n)."""
    cfg = get_scale(scale)
    data = measurements(scale)
    table = Table(
        "Figure 5 — Avg #routing hops (greedy clockwise)",
        ["n", "0.5*log2(n)"] + [f"levels={lv}" for lv in cfg.fig3_levels],
    )
    for size in cfg.fig3_sizes:
        table.add_row(
            size,
            0.5 * math.log2(size),
            *(data[(size, levels)] for levels in cfg.fig3_levels),
        )
    return table
