"""Figure 5: average number of routing hops vs network size.

Paper result: hops are ~0.5*log2(n) + c for a small constant c that grows
with hierarchy depth, by at most 0.7 regardless of the number of levels —
routing in Crescendo is almost as efficient as in flat Chord.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..analysis.metrics import sample_routing
from ..analysis.tables import Table
from ..perf.executor import map_points
from .common import build_crescendo, get_scale, seeded_rng


def _grid_point(point: Tuple[int, int, int]) -> float:
    """Mean hops at one (size, levels, samples) grid point (worker-safe)."""
    size, levels, samples = point
    rng = seeded_rng("fig5", size, levels)
    net = build_crescendo(size, levels, rng, cache_token=("fig5", size, levels))
    stats = sample_routing(net, rng, samples=samples)
    if stats.success_rate != 1.0:
        raise AssertionError(f"routing failures at n={size}, levels={levels}")
    return stats.mean_hops


def measurements(
    scale: str = "small", jobs: Optional[int] = None
) -> Dict[Tuple[int, int], float]:
    """(n, levels) -> mean routing hops."""
    cfg = get_scale(scale)
    points = [
        (size, levels, cfg.route_samples)
        for size in cfg.fig3_sizes
        for levels in cfg.fig3_levels
    ]
    values = map_points(_grid_point, points, jobs=jobs)
    return {
        (size, levels): value for (size, levels, _), value in zip(points, values)
    }


def run(scale: str = "small", jobs: Optional[int] = None) -> Table:
    """Render the Figure 5 table (avg routing hops vs n)."""
    cfg = get_scale(scale)
    data = measurements(scale, jobs=jobs)
    table = Table(
        "Figure 5 — Avg #routing hops (greedy clockwise)",
        ["n", "0.5*log2(n)"] + [f"levels={lv}" for lv in cfg.fig3_levels],
    )
    for size in cfg.fig3_sizes:
        table.add_row(
            size,
            0.5 * math.log2(size),
            *(data[(size, levels)] for levels in cfg.fig3_levels),
        )
    return table
