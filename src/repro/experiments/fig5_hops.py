"""Figure 5: average number of routing hops vs network size.

Paper result: hops are ~0.5*log2(n) + c for a small constant c that grows
with hierarchy depth, by at most 0.7 regardless of the number of levels —
routing in Crescendo is almost as efficient as in flat Chord.

Two grid transports exist.  The default hands each worker a ``(size,
levels, samples)`` tuple and the worker builds its own network (cheap at
small scales, and cache hits make repeats nearly free).  With ``--arena``
(or ``arena=True``) the parent builds each point's network once, exports
its compiled CSR arrays into a shared-memory arena
(:mod:`repro.perf.arena`) together with the point's post-build RNG state
and top-level-domain codes, and workers attach zero-copy — the transport
for populations whose Python link tables would not fit ``--jobs`` times
in memory.  Both transports produce bit-identical measurements (asserted
by ``tests/test_perf_arena.py``).
"""

from __future__ import annotations

import logging
import math
import random
from typing import Dict, Optional, Tuple

from ..analysis.metrics import sample_routing, sample_routing_compiled
from ..analysis.tables import Table
from ..obs import trace as obs_trace
from ..perf import arena as perf_arena
from ..perf.executor import map_points
from ..perf.kernels import compile_network
from .common import build_crescendo, get_scale, seeded_rng

logger = logging.getLogger("repro.experiments.fig5")


def _grid_point(point: Tuple[int, int, int]) -> float:
    """Mean hops at one (size, levels, samples) grid point (worker-safe)."""
    size, levels, samples = point
    rng = seeded_rng("fig5", size, levels)
    net = build_crescendo(size, levels, rng, cache_token=("fig5", size, levels))
    stats = sample_routing(net, rng, samples=samples)
    if stats.success_rate != 1.0:
        raise AssertionError(f"routing failures at n={size}, levels={levels}")
    return stats.mean_hops


def _arena_grid_point(point: Tuple[int, int, int]) -> float:
    """Mean hops at one grid point, routed over the published arena.

    The worker attaches read-only to the parent's exported network,
    restores the parent's post-build RNG state, and measures with
    :func:`sample_routing_compiled` — drawing the identical workload and
    recording the identical metrics as :func:`_grid_point` on the same
    network.
    """
    size, levels, samples = point
    view = perf_arena.attach_network(perf_arena.current_manifest((size, levels)))
    rng = random.Random()
    rng.setstate(view.meta["extras"]["rng_state"])
    stats = sample_routing_compiled(
        view.compiled, rng, samples=samples, top_domain=view.top_domain
    )
    if stats.success_rate != 1.0:
        raise AssertionError(f"routing failures at n={size}, levels={levels}")
    return stats.mean_hops


def measurements(
    scale: str = "small",
    jobs: Optional[int] = None,
    arena: Optional[bool] = None,
) -> Dict[Tuple[int, int], float]:
    """(n, levels) -> mean routing hops.

    ``arena`` selects the shared-memory grid transport (``None`` follows
    the process default set by the CLI ``--arena`` flag).  The parent owns
    every exported segment and disposes them all when the grid returns —
    normally or not — so no shared memory outlives the call.
    """
    cfg = get_scale(scale)
    points = [
        (size, levels, cfg.route_samples)
        for size in cfg.fig3_sizes
        for levels in cfg.fig3_levels
    ]
    if arena is None:
        arena = perf_arena.default_enabled()
    if arena and obs_trace.active_tracer() is not None:
        logger.warning(
            "route tracing is active; arena workers cannot trace — "
            "falling back to the object-path grid"
        )
        arena = False
    if not arena:
        values = map_points(_grid_point, points, jobs=jobs)
    else:
        owners = []
        manifests: Dict[Tuple[int, int], perf_arena.ArenaManifest] = {}
        try:
            for size, levels, _ in points:
                rng = seeded_rng("fig5", size, levels)
                net = build_crescendo(
                    size, levels, rng, cache_token=("fig5", size, levels)
                )
                compiled = compile_network(net)
                owner = compiled.to_arena(
                    top_domain=perf_arena.top_domain_codes(
                        net.hierarchy, compiled.ids
                    ),
                    extras={"rng_state": rng.getstate()},
                    label="fig5",
                )
                owners.append(owner)
                manifests[(size, levels)] = owner.manifest
            values = map_points(
                _arena_grid_point, points, jobs=jobs, arenas=manifests
            )
        finally:
            for owner in owners:
                owner.dispose()
    return {
        (size, levels): value for (size, levels, _), value in zip(points, values)
    }


def run(
    scale: str = "small",
    jobs: Optional[int] = None,
    arena: Optional[bool] = None,
) -> Table:
    """Render the Figure 5 table (avg routing hops vs n)."""
    cfg = get_scale(scale)
    data = measurements(scale, jobs=jobs, arena=arena)
    table = Table(
        "Figure 5 — Avg #routing hops (greedy clockwise)",
        ["n", "0.5*log2(n)"] + [f"levels={lv}" for lv in cfg.fig3_levels],
    )
    for size in cfg.fig3_sizes:
        table.add_row(
            size,
            0.5 * math.log2(size),
            *(data[(size, levels)] for levels in cfg.fig3_levels),
        )
    return table
