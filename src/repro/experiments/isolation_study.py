"""Fault-isolation study (the headline of Section 2.2, quantified).

"Interactions between two nodes in a domain cannot be interfered with by,
or affected by the failure of, nodes outside the domain."

For domains at each hierarchy depth, we kill every node *outside* the
domain and measure intra-domain delivery and hop inflation for Crescendo
and flat Chord on identical placements.  Canon's locality property predicts
100% / 1.00x for Crescendo at every depth; Chord collapses.

Run: ``python -m repro.experiments isolation --scale smoke``.
"""

from __future__ import annotations

import statistics
from typing import Dict, Tuple

from ..analysis.tables import Table
from ..core.idspace import IdSpace
from ..core.hierarchy import build_uniform_hierarchy
from ..dhts.chord import ChordNetwork
from ..dhts.crescendo import CrescendoNetwork
from ..simulation.failures import intra_domain_isolation
from .common import get_scale, seeded_rng

DEPTHS = (1, 2)


def measurements(scale: str = "smoke") -> Dict[Tuple[str, int], Tuple[float, float]]:
    """(system, domain depth) -> (delivery rate, hop inflation)."""
    cfg = get_scale(scale)
    size = 600 if scale == "smoke" else 2000
    rng = seeded_rng("isolation", size)
    space = IdSpace()
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, 3, 3, rng)
    systems = {
        "Crescendo": CrescendoNetwork(space, hierarchy).build(),
        "Chord": ChordNetwork(space, hierarchy).build(),
    }
    out: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for depth in DEPTHS:
        # Average over a few domains at this depth for stability.
        sample_domains = []
        seen = set()
        for node in ids:
            domain = hierarchy.path_of(node)[:depth]
            if domain not in seen and len(hierarchy.members(domain)) >= 10:
                seen.add(domain)
                sample_domains.append(domain)
            if len(sample_domains) == 3:
                break
        for label, net in systems.items():
            rates, inflations = [], []
            for domain in sample_domains:
                report = intra_domain_isolation(
                    net, domain, seeded_rng("iso-r", label, depth, domain),
                    samples=cfg.route_samples // 3,
                )
                rates.append(report.success_rate)
                inflations.append(report.hop_inflation)
            out[(label, depth)] = (
                statistics.mean(rates), statistics.mean(inflations),
            )
    return out


def run(scale: str = "smoke") -> Table:
    """Render the fault-isolation table (delivery and hop inflation)."""
    data = measurements(scale)
    table = Table(
        "Fault isolation — kill everything outside the domain",
        ["system", "domain depth", "intra-domain delivery", "hop inflation"],
    )
    for (label, depth), (rate, inflation) in sorted(data.items()):
        table.add_row(label, depth, f"{rate:.1%}", inflation)
    return table
