"""Figure 8: hop and latency overlap fraction vs domain level.

A random node r issues a query Q for a random key along path P; a second
node drawn from r's level-L domain issues the same query along path P'.
The overlap fraction of P' with P (the converged common suffix) measures the
bandwidth/latency a cached answer on P would save.  Paper result: the
overlap is near zero for Chord (Prox.) at every level, and rises strongly
with domain level for Crescendo (higher for latency than for hops, since the
non-overlapping local hops are cheap).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.overlap import mean_overlap
from ..analysis.tables import Table
from ..core.routing import route_ring
from ..proximity.groups import route_grouped
from .common import build_topology_setup, get_scale, seeded_rng

SYSTEMS = (
    ("Crescendo", "crescendo", route_ring),
    ("Chord (Prox.)", "chord_prox", route_grouped),
)

LEVELS = (0, 1, 2, 3, 4)  # 0 == "Top Level" (second node drawn from anywhere)


def measurements(
    scale: str = "small",
) -> Dict[Tuple[str, int], Tuple[float, float]]:
    """(system, domain level) -> (hop overlap fraction, latency overlap fraction)."""
    cfg = get_scale(scale)
    setup = build_topology_setup(cfg.fig7_size, "fig8")
    hierarchy, ids = setup.hierarchy, setup.node_ids
    out: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for level in LEVELS:
        rng = seeded_rng("fig8", level)
        scenarios: List[Tuple[int, int, int]] = []
        for _ in range(cfg.route_samples):
            first = rng.choice(ids)
            path = hierarchy.path_of(first)
            members = [
                m for m in hierarchy.members(path[: min(level, len(path))]) if m != first
            ]
            if not members:
                continue
            second = rng.choice(members)
            key = setup.space.random_id(rng)
            scenarios.append((first, second, key))
        for label, attr, router in SYSTEMS:
            net = getattr(setup, attr)
            pairs = []
            for first, second, key in scenarios:
                ref = router(net, first, key)
                two = router(net, second, key)
                if ref.success and two.success:
                    pairs.append((ref.path, two.path))
            hop_frac, lat_frac = mean_overlap(pairs, setup.latency)
            out[(label, level)] = (hop_frac, lat_frac or 0.0)
    return out


def run(scale: str = "small") -> Table:
    """Render the Figure 8 table (overlap fractions vs level)."""
    data = measurements(scale)
    table = Table(
        "Figure 8 — Overlap fraction vs domain level",
        ["domain level"]
        + [f"{label} ({metric})" for label, _, _ in SYSTEMS for metric in ("hops", "latency")],
    )
    for level in LEVELS:
        name = "Top Level" if level == 0 else f"Level {level}"
        cells = []
        for label, _, _ in SYSTEMS:
            hop_frac, lat_frac = data[(label, level)]
            cells.extend([hop_frac, lat_frac])
        table.add_row(name, *cells)
    return table
