"""Figure 3: average number of links per node vs network size.

Paper result: the average degree stays extremely close to log2(n) regardless
of the number of hierarchy levels, and *decreases slightly* as levels are
added (a Jensen's-inequality effect on the inter-domain link count).
Chord is the levels=1 row.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..analysis.tables import Table
from .common import Scale, build_crescendo, get_scale, seeded_rng


def run(scale: str = "small") -> Table:
    """Render the Figure 3 table (avg #links/node vs n)."""
    cfg = get_scale(scale)
    table = Table(
        "Figure 3 — Avg #links/node (fan-out 10, Zipf(1.25) hierarchy)",
        ["n", "log2(n)"] + [f"levels={lv}" for lv in cfg.fig3_levels],
    )
    for size in cfg.fig3_sizes:
        row: list = [size, math.log2(size)]
        for levels in cfg.fig3_levels:
            net = build_crescendo(size, levels, seeded_rng("fig3", size, levels))
            row.append(net.average_degree())
        table.add_row(*row)
    return table


def measurements(scale: str = "small") -> Dict[Tuple[int, int], float]:
    """(n, levels) -> average degree, for programmatic assertions."""
    cfg = get_scale(scale)
    out: Dict[Tuple[int, int], float] = {}
    for size in cfg.fig3_sizes:
        for levels in cfg.fig3_levels:
            net = build_crescendo(size, levels, seeded_rng("fig3", size, levels))
            out[(size, levels)] = net.average_degree()
    return out
