"""Figure 3: average number of links per node vs network size.

Paper result: the average degree stays extremely close to log2(n) regardless
of the number of hierarchy levels, and *decreases slightly* as levels are
added (a Jensen's-inequality effect on the inter-domain link count).
Chord is the levels=1 row.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..analysis.tables import Table
from ..perf.executor import map_points
from .common import Scale, build_crescendo, get_scale, seeded_rng


def _grid_point(point: Tuple[int, int]) -> float:
    """Average degree at one (size, levels) grid point (worker-safe)."""
    size, levels = point
    net = build_crescendo(
        size,
        levels,
        seeded_rng("fig3", size, levels),
        cache_token=("fig3", size, levels),
    )
    return net.average_degree()


def measurements(
    scale: str = "small", jobs: Optional[int] = None
) -> Dict[Tuple[int, int], float]:
    """(n, levels) -> average degree, for programmatic assertions."""
    cfg = get_scale(scale)
    points = [(size, levels) for size in cfg.fig3_sizes for levels in cfg.fig3_levels]
    return dict(zip(points, map_points(_grid_point, points, jobs=jobs)))


def run(scale: str = "small", jobs: Optional[int] = None) -> Table:
    """Render the Figure 3 table (avg #links/node vs n)."""
    cfg = get_scale(scale)
    data = measurements(scale, jobs=jobs)
    table = Table(
        "Figure 3 — Avg #links/node (fan-out 10, Zipf(1.25) hierarchy)",
        ["n", "log2(n)"] + [f"levels={lv}" for lv in cfg.fig3_levels],
    )
    for size in cfg.fig3_sizes:
        table.add_row(
            size,
            math.log2(size),
            *(data[(size, levels)] for levels in cfg.fig3_levels),
        )
    return table
