"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — measurements that justify (or quantify) the
decisions the paper states without evaluation:

- ``merge_economy``: Canon's condition (b) versus the naive
  full-Chord-at-every-level construction (degree blowup avoided).
- ``lookahead_gain``: Symphony/Cacophony greedy-with-lookahead hop savings
  (the paper cites ~40% for large networks).
- ``sampling_curve``: link latency versus proximity sample size s (the
  paper's "s = 32 is sufficient").
- ``group_target_sweep``: stretch of Chord (Prox.) / Crescendo (Prox.) as
  the expected group size varies.
- ``leaf_set_sweep``: lookup survival under crashes versus leaf-set size.
- ``cancan_alignment``: intra-domain locality of Can-Can with
  domain-aligned versus random identifier allocation.

Run: ``python -m repro.experiments ablations --scale smoke``.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List, Tuple

from ..analysis.metrics import sample_routing, stretch
from ..analysis.tables import Table
from ..core.idspace import IdSpace
from ..core.hierarchy import build_uniform_hierarchy
from ..core.routing import route_ring, route_ring_lookahead
from ..dhts.cacophony import CacophonyNetwork
from ..dhts.cancan import build_cancan
from ..dhts.crescendo import CrescendoNetwork
from ..dhts.naive import NaiveHierarchicalChord
from ..dhts.symphony import SymphonyNetwork
from ..proximity.groups import (
    ProximityChordNetwork,
    ProximityCrescendoNetwork,
    route_grouped,
)
from ..proximity.sampling import sampling_quality
from ..simulation.protocol import SimulatedCrescendo
from .common import build_topology_setup, get_scale, seeded_rng


def merge_economy(scale: str = "smoke") -> Dict[str, float]:
    """Average degree: Crescendo vs naive per-level Chord (same placements)."""
    size = 1024 if scale != "smoke" else 512
    rng = seeded_rng("abl-merge", size)
    space = IdSpace()
    ids = space.random_ids(size, rng)
    hierarchy = build_uniform_hierarchy(ids, 5, 3, rng)
    crescendo = CrescendoNetwork(space, hierarchy).build()
    naive = NaiveHierarchicalChord(space, hierarchy).build()
    crescendo_stats = sample_routing(crescendo, seeded_rng("abl-merge-r", 1), 200)
    naive_stats = sample_routing(naive, seeded_rng("abl-merge-r", 2), 200)
    return {
        "crescendo_degree": crescendo.average_degree(),
        "naive_degree": naive.average_degree(),
        "degree_ratio": naive.average_degree() / crescendo.average_degree(),
        "crescendo_hops": crescendo_stats.mean_hops,
        "naive_hops": naive_stats.mean_hops,
    }


def lookahead_gain(scale: str = "smoke") -> Dict[str, float]:
    """Hop savings of greedy-with-lookahead on Symphony and Cacophony."""
    size = 2048 if scale != "smoke" else 600
    rng = seeded_rng("abl-look", size)
    space = IdSpace()
    ids = space.random_ids(size, rng)
    flat = build_uniform_hierarchy(ids, 5, 1, rng)
    deep = build_uniform_hierarchy(ids, 5, 3, rng)
    out: Dict[str, float] = {}
    for name, net in (
        ("symphony", SymphonyNetwork(space, flat, seeded_rng("abl-look-s")).build()),
        ("cacophony", CacophonyNetwork(space, deep, seeded_rng("abl-look-c")).build()),
    ):
        pair_rng = seeded_rng("abl-look-p", name)
        pairs = [tuple(pair_rng.sample(ids, 2)) for _ in range(250)]
        greedy = statistics.mean(route_ring(net, a, b).hops for a, b in pairs)
        ahead = statistics.mean(
            route_ring_lookahead(net, a, b).hops for a, b in pairs
        )
        out[f"{name}_greedy"] = greedy
        out[f"{name}_lookahead"] = ahead
        out[f"{name}_saving"] = 1 - ahead / greedy
    return out


def sampling_curve(scale: str = "smoke") -> Dict[int, float]:
    """Mean link latency vs proximity sample size on the transit-stub model."""
    setup = build_topology_setup(512 if scale == "smoke" else 2048, "abl-sample")
    rng = seeded_rng("abl-sample-r")
    return sampling_quality(
        setup.node_ids, setup.latency, rng, sample_sizes=(1, 2, 4, 8, 16, 32, 64)
    )


def group_target_sweep(scale: str = "smoke") -> Dict[int, Tuple[float, float]]:
    """Stretch of the two prox systems as expected group size varies."""
    size = 512 if scale == "smoke" else 2048
    out: Dict[int, Tuple[float, float]] = {}
    for target in (4, 8, 16, 32):
        setup = build_topology_setup(size, ("abl-group", target), group_target=target)
        rng = seeded_rng("abl-group-r", target)
        chord_prox, _ = stretch(
            setup.chord_prox, rng, setup.latency, setup.direct_latency,
            samples=150, router=route_grouped,
        )
        crescendo_prox, _ = stretch(
            setup.crescendo_prox, rng, setup.latency, setup.direct_latency,
            samples=150, router=route_grouped,
        )
        out[target] = (chord_prox, crescendo_prox)
    return out


def leaf_set_sweep(scale: str = "smoke") -> Dict[int, float]:
    """Lookup delivery after crashing 15% of nodes, vs leaf-set size."""
    size = 150 if scale == "smoke" else 300
    out: Dict[int, float] = {}
    for leaf_set in (1, 2, 4, 8):
        rng = seeded_rng("abl-leaf", leaf_set)
        space = IdSpace()
        net = SimulatedCrescendo(space, leaf_set_size=leaf_set)
        ids = space.random_ids(size, rng)
        for node_id in ids:
            net.join(node_id, (rng.choice("ab"), rng.choice("xy")))
        victims = rng.sample(ids, int(0.15 * size))
        for victim in victims:
            net.crash(victim)
        live = [i for i in ids if i not in set(victims)]
        delivered = 0
        trials = 120
        for _ in range(trials):
            a, b = rng.sample(live, 2)
            result = net.lookup(a, b)
            delivered += result.success and result.terminal == b
        out[leaf_set] = delivered / trials
    return out


def bucket_replication_sweep(scale: str = "smoke") -> Dict[int, float]:
    """Kademlia/Kandy: lookup delivery under crashes vs bucket size k.

    Real Kademlia keeps k contacts per bucket for resilience (the paper
    models one); this sweep quantifies what the redundancy buys on Kandy.
    """
    from ..core.routing import route_xor
    from ..dhts.kandy import KandyNetwork

    size = 400 if scale == "smoke" else 1000
    out: Dict[int, float] = {}
    for bucket_size in (1, 2, 3):
        rng = seeded_rng("abl-bucket", bucket_size)
        space = IdSpace()
        ids = space.random_ids(size, rng)
        hierarchy = build_uniform_hierarchy(ids, 4, 3, rng)
        net = KandyNetwork(space, hierarchy, rng, bucket_size=bucket_size).build()
        dead = set(rng.sample(ids, int(0.2 * size)))
        alive = set(ids) - dead
        live = sorted(alive)
        delivered = 0
        trials = 150
        for _ in range(trials):
            a, b = rng.sample(live, 2)
            result = route_xor(net, a, b, alive=alive)
            delivered += result.success and result.terminal == b
        out[bucket_size] = delivered / trials
    return out


def cancan_alignment(scale: str = "smoke") -> Dict[str, float]:
    """Intra-domain locality fraction: aligned vs random CAN identifiers."""
    size = 300 if scale == "smoke" else 600
    rng = seeded_rng("abl-can", size)
    paths = [
        (str(rng.randrange(4)), str(rng.randrange(4))) for _ in range(size)
    ]
    out: Dict[str, float] = {}
    for label, aligned in (("aligned", True), ("random", False)):
        net = build_cancan(
            IdSpace(16), size, seeded_rng("abl-can-t", label), paths,
            align_domains=aligned,
        )
        probe_rng = seeded_rng("abl-can-p", label)
        local_fraction: List[float] = []
        trials = 0
        while trials < 150:
            src = probe_rng.choice(net.node_ids)
            domain = net.hierarchy.path_of(src)
            peers = [m for m in net.hierarchy.members(domain) if m != src]
            if not peers:
                continue
            dst = probe_rng.choice(peers)
            key = net.prefixes[dst].padded(net.space.bits)
            route = net.route_bitfix(src, key)
            inside = sum(
                1 for n in route.path if net.hierarchy.path_of(n) == domain
            )
            local_fraction.append(inside / len(route.path))
            trials += 1
        out[label] = statistics.mean(local_fraction)
    return out


def run(scale: str = "smoke") -> Table:
    """Run every ablation and render the one-row-per-ablation table."""
    table = Table("Ablations — design-choice measurements", ["ablation", "result"])
    economy = merge_economy(scale)
    table.add_row(
        "merge economy (degree)",
        f"crescendo {economy['crescendo_degree']:.1f} vs naive "
        f"{economy['naive_degree']:.1f} ({economy['degree_ratio']:.2f}x)",
    )
    look = lookahead_gain(scale)
    table.add_row(
        "lookahead hop saving",
        f"symphony {look['symphony_saving']:.0%}, "
        f"cacophony {look['cacophony_saving']:.0%}",
    )
    curve = sampling_curve(scale)
    table.add_row(
        "sampling curve (ms)",
        ", ".join(f"s={s}:{v:.0f}" for s, v in sorted(curve.items())),
    )
    groups = group_target_sweep(scale)
    table.add_row(
        "group target sweep (stretch)",
        ", ".join(
            f"g={g}: chord {c:.2f} / crescendo {r:.2f}"
            for g, (c, r) in sorted(groups.items())
        ),
    )
    leaf = leaf_set_sweep(scale)
    table.add_row(
        "leaf-set size vs delivery",
        ", ".join(f"r={r}:{v:.0%}" for r, v in sorted(leaf.items())),
    )
    buckets = bucket_replication_sweep(scale)
    table.add_row(
        "kandy bucket size vs delivery",
        ", ".join(f"k={k}:{v:.0%}" for k, v in sorted(buckets.items())),
    )
    can = cancan_alignment(scale)
    table.add_row(
        "can-can locality",
        f"aligned {can['aligned']:.2f} vs random {can['random']:.2f}",
    )
    return table
