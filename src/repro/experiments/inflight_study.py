"""In-flight failure sensitivity: crashes landing while lookups are airborne.

The RPC-level churn study treats each lookup atomically; this study uses
the event-driven :class:`~repro.simulation.async_lookup.AsyncEngine` to
launch a burst of lookups and crash a batch of nodes at a chosen virtual
time — before launch, mid-flight (between hops), or after the burst has
landed — measuring how delivery degrades with crash timing.

Run: ``python -m repro.experiments inflight --scale smoke``.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import Table
from ..core.idspace import IdSpace
from ..simulation.async_lookup import AsyncEngine
from ..simulation.events import ConstantLatency, Simulator
from ..simulation.protocol import SimulatedCrescendo
from .common import get_scale, seeded_rng

PATHS = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]

#: crash instant (virtual time); each hop costs 2 time units.
TIMINGS = {
    "before launch": 0.0,
    "mid-flight (hop 2)": 3.0,
    "mid-flight (hop 4)": 7.0,
    "after landing": 100.0,
}


def measurements(scale: str = "smoke") -> Dict[str, float]:
    """crash timing -> delivery rate of a 150-lookup burst."""
    size = 200 if scale == "smoke" else 500
    lookups = 150
    crash_fraction = 0.1
    out: Dict[str, float] = {}
    for label, when in TIMINGS.items():
        rng = seeded_rng("inflight", label, size)
        space = IdSpace()
        sim = Simulator()
        net = SimulatedCrescendo(space, sim=sim, latency_model=ConstantLatency(2.0))
        ids = space.random_ids(size, rng)
        for node_id in ids:
            net.join(node_id, PATHS[rng.randrange(len(PATHS))])
        net.stabilize()
        victims = rng.sample(ids, int(crash_fraction * size))
        survivors = [i for i in ids if i not in set(victims)]

        engine = AsyncEngine(net)
        for _ in range(lookups):
            a, b = rng.sample(survivors, 2)
            engine.lookup(a, b)

        def crash_batch() -> None:
            for victim in victims:
                if victim in net.nodes and net.nodes[victim].alive:
                    net.crash(victim)

        sim.schedule(when, crash_batch)
        sim.run()
        # delivery_rate() is NaN until something completes; the drained
        # burst guarantees data, so make that precondition explicit.
        assert engine.in_flight == 0 and engine.completed
        out[label] = engine.delivery_rate()
    return out


def run(scale: str = "smoke") -> Table:
    """Render the crash-timing vs delivery table."""
    data = measurements(scale)
    table = Table(
        "In-flight failures — delivery vs crash timing (10% crash batch)",
        ["crash timing", "delivery rate"],
    )
    for label in TIMINGS:
        table.add_row(label, data[label])
    return table
