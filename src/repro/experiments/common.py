"""Shared scaffolding for the per-figure experiment modules.

Each experiment runs at one of three scales:

- ``smoke``: seconds; used by unit tests.
- ``small``: tens of seconds; used by the benchmark harness to assert the
  *shape* of every curve.
- ``paper``: the paper's full parameter grid (up to 65536 nodes); minutes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import ROOT, Hierarchy, build_uniform_hierarchy
from ..core.idspace import IdSpace
from ..obs.profile import PROFILER
from ..dhts.chord import ChordNetwork
from ..dhts.crescendo import CrescendoNetwork
from ..perf import cache as perf_cache
from ..perf.build import builder_tag
from ..proximity.groups import (
    ProximityChordNetwork,
    ProximityCrescendoNetwork,
    route_grouped,
)
from ..topology.transit_stub import TopologyParams, TransitStubTopology

MASTER_SEED = 0xC4404  # "Canon" in leet-ish hex; change to re-randomise all runs

#: Paper constants (Section 5.1): fan-out 10 hierarchies, Zipf(1.25) leaves.
FANOUT = 10
ZIPF_EXPONENT = 1.25

#: Populations at or above this also cache their compiled CSR arrays as an
#: ``.npz`` sidecar, so warm loads skip Python-object reconstruction of the
#: routing structures (small networks compile faster than the file reads).
NPZ_MIN_SIZE = 2048


@dataclass(frozen=True)
class Scale:
    name: str
    fig3_sizes: Tuple[int, ...]
    fig3_levels: Tuple[int, ...]
    fig4_size: int
    fig6_sizes: Tuple[int, ...]
    fig7_size: int
    route_samples: int
    multicast_sources: int


SCALES: Dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        fig3_sizes=(256, 512),
        fig3_levels=(1, 2, 3),
        fig4_size=512,
        fig6_sizes=(512,),
        fig7_size=1024,
        route_samples=120,
        multicast_sources=100,
    ),
    "small": Scale(
        name="small",
        fig3_sizes=(1024, 2048, 4096),
        fig3_levels=(1, 2, 3, 4, 5),
        fig4_size=4096,
        fig6_sizes=(2048, 4096),
        fig7_size=4096,
        route_samples=400,
        multicast_sources=500,
    ),
    "paper": Scale(
        name="paper",
        fig3_sizes=(1024, 2048, 4096, 8192, 16384, 32768, 65536),
        fig3_levels=(1, 2, 3, 4, 5),
        fig4_size=32768,
        fig6_sizes=(2048, 4096, 8192, 16384, 32768, 65536),
        fig7_size=32768,
        route_samples=2000,
        multicast_sources=1000,
    ),
}


def get_scale(name: str) -> Scale:
    """Look up a named scale, with a helpful error for unknown names."""
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; pick one of {sorted(SCALES)}")


def seeded_rng(*tokens: object) -> random.Random:
    """A deterministic RNG derived from the master seed and a token tuple."""
    return random.Random(f"{MASTER_SEED}:{tokens!r}")


def _maybe_verify(*networks) -> None:
    """Run the invariant registry on freshly built networks under --verify.

    Imported lazily so the experiments package stays importable without
    pulling the verification subsystem into every run.
    """
    from ..verify.invariants import auto_verify_enabled, verify_network

    if auto_verify_enabled():
        for net in networks:
            verify_network(net)


def build_crescendo(
    size: int,
    levels: int,
    rng: random.Random,
    space: Optional[IdSpace] = None,
    cache_token: Optional[Tuple] = None,
) -> CrescendoNetwork:
    """A Crescendo on the paper's synthetic hierarchy (levels=1 == Chord).

    When a :mod:`repro.perf.cache` is active and ``cache_token`` is given
    (by convention the same token tuple that seeded ``rng``), the built
    link tables and hierarchy placements are cached on disk.  On a hit the
    construction is skipped and ``rng`` is fast-forwarded to its recorded
    post-build state, so every later draw matches an uncached run exactly.

    Build time accrues to the ``build`` phase of
    :data:`repro.obs.profile.PROFILER` (reported by the CLI ``--profile``
    flag).
    """
    cache = perf_cache.active_cache()
    space = space or IdSpace()
    key = None
    if cache is not None and cache_token is not None:
        # The builder tag keys entries by the implementation that will run,
        # so bulk-built tables never serve a reference run or vice versa.
        key = (
            "crescendo", size, levels, cache_token, space.bits, FANOUT,
            ZIPF_EXPONENT, builder_tag(size=size),
        )
        payload = cache.get(key)
        if payload is not None:
            with PROFILER.phase("build"):
                hierarchy = Hierarchy()
                for node, path in payload["placements"]:
                    hierarchy.place(node, tuple(path))
                net = CrescendoNetwork(space, hierarchy)
                perf_cache.install_network(net, payload)
                arrays = cache.get_arrays(key)
                if arrays is not None:
                    # Warm compiled form: adopt the sidecar's CSR arrays so
                    # the first batch route skips Python-object compilation.
                    from ..perf.kernels import CompiledNetwork

                    net.__dict__["_perf_compiled"] = CompiledNetwork.from_arrays(
                        network=net,
                        metric=net.metric,
                        bits=space.bits,
                        **arrays,
                    )
            rng.setstate(payload["rng_state"])
            _maybe_verify(net)
            return net
    with PROFILER.phase("build"):
        ids = space.random_ids(size, rng)
        hierarchy = build_uniform_hierarchy(
            ids, FANOUT, levels, rng, distribution="zipf", zipf_exponent=ZIPF_EXPONENT
        )
        net = CrescendoNetwork(space, hierarchy).build()
    if key is not None:
        payload = perf_cache.network_payload(net, rng_state=rng.getstate())
        # Placements are replayed in insertion order so hierarchy member
        # lists (and everything downstream of them) come back identical.
        payload["placements"] = [
            (node, hierarchy.path_of(node)) for node in hierarchy.members(ROOT)
        ]
        cache.put(key, payload)
        if size >= NPZ_MIN_SIZE:
            from ..perf.kernels import compile_network

            compiled = compile_network(net)
            cache.put_arrays(
                key,
                {
                    "ids": compiled.ids,
                    "indptr": compiled.indptr,
                    "neighbors": compiled.neighbors,
                    "nbr_pos": compiled.nbr_pos,
                },
            )
    _maybe_verify(net)
    return net


@dataclass
class TopologySetup:
    """Everything the topology-based experiments (Figs 6-9) share."""

    topology: TransitStubTopology
    space: IdSpace
    hierarchy: Hierarchy
    node_ids: List[int]
    direct_latency: float
    chord: ChordNetwork
    crescendo: CrescendoNetwork
    chord_prox: ProximityChordNetwork
    crescendo_prox: ProximityCrescendoNetwork

    @property
    def latency(self) -> Callable[[int, int], float]:
        return self.topology.node_latency


def build_topology_setup(
    size: int,
    seed_token: object,
    include_flat: bool = True,
    group_target: int = 8,
) -> TopologySetup:
    """Attach ``size`` nodes to a fresh transit-stub graph; build all four systems.

    The topology, hierarchy and direct-latency estimate are always computed
    (they are cheap and feed the shared RNG stream); with an active
    :mod:`repro.perf.cache` the four *link-table builds* — by far the
    expensive part — are cached as one unit, keyed by the seed token, so
    the RNG draws of the two proximity builds are skipped and replaced by
    the recorded post-build state.

    Build time accrues to the ``build`` phase of
    :data:`repro.obs.profile.PROFILER`.
    """
    cache = perf_cache.active_cache()
    with PROFILER.phase("build"):
        rng = seeded_rng("topo", seed_token, size)
        topology = TransitStubTopology(TopologyParams(), rng=rng)
        space = IdSpace()
        node_ids = space.random_ids(size, rng)
        hierarchy = topology.attach_nodes(node_ids, rng)
        latency = topology.node_latency
        direct = topology.average_direct_latency(min(4000, size * 4), rng)
        # Constructors draw nothing from ``rng`` (only the proximity builds
        # do), so constructing all four up front preserves the RNG stream
        # and lets a cache hit install link tables without building.
        chord = ChordNetwork(space, hierarchy)
        crescendo = CrescendoNetwork(space, hierarchy)
        chord_prox = ProximityChordNetwork(
            space, hierarchy, latency, rng, group_target=group_target
        )
        crescendo_prox = ProximityCrescendoNetwork(
            space, hierarchy, latency, rng, group_target=group_target
        )
        networks = (chord, crescendo, chord_prox, crescendo_prox)
        key = (
            "topo-setup", seed_token, size, include_flat, group_target,
            space.bits, builder_tag(size=size),
        )
        payload = cache.get(key) if cache is not None else None
        if payload is not None and len(payload.get("networks", ())) == len(networks):
            for net, net_payload in zip(networks, payload["networks"]):
                perf_cache.install_network(net, net_payload)
            rng.setstate(payload["rng_state"])
        else:
            for net in networks:
                net.build()
            if cache is not None:
                cache.put(
                    key,
                    {
                        "networks": [perf_cache.network_payload(n) for n in networks],
                        "rng_state": rng.getstate(),
                    },
                )
    _maybe_verify(*networks)
    return TopologySetup(
        topology=topology,
        space=space,
        hierarchy=hierarchy,
        node_ids=node_ids,
        direct_latency=direct,
        chord=chord,
        crescendo=crescendo,
        chord_prox=chord_prox,
        crescendo_prox=crescendo_prox,
    )
