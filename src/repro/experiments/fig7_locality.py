"""Figure 7: query latency as a function of query locality.

A "Top Level" query targets content anywhere in the system; a "Level 1"
query targets content within the source's transit domain; down to "Level 4"
(the source's own stub node).  Paper result: Crescendo's latency collapses
as locality rises (virtually zero by Level 3) while Chord — even with
proximity adaptation — barely improves, because flat routing has no path
locality.  Plain Chord is an order of magnitude worse and is omitted from
the paper's plot; we include it for completeness.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from ..analysis.tables import Table
from ..core.routing import route_ring
from ..proximity.groups import route_grouped
from ..workloads.queries import locality_pair
from .common import build_topology_setup, get_scale, seeded_rng

SYSTEMS = (
    ("Chord (Prox.)", "chord_prox", route_grouped),
    ("Crescendo (No Prox.)", "crescendo", route_ring),
    ("Crescendo (Prox.)", "crescendo_prox", route_grouped),
)

LEVELS = (0, 1, 2, 3, 4)  # 0 == "Top Level"


def measurements(scale: str = "small") -> Dict[Tuple[str, int], float]:
    """(system, locality level) -> mean query latency (ms)."""
    cfg = get_scale(scale)
    setup = build_topology_setup(cfg.fig7_size, "fig7")
    out: Dict[Tuple[str, int], float] = {}
    for level in LEVELS:
        rng = seeded_rng("fig7", level)
        pairs = [
            locality_pair(setup.hierarchy, setup.node_ids, rng, level)
            for _ in range(cfg.route_samples)
        ]
        for label, attr, router in SYSTEMS:
            net = getattr(setup, attr)
            latencies: List[float] = []
            for src, dst in pairs:
                result = router(net, src, dst)
                if result.success and result.terminal == dst:
                    latencies.append(result.latency(setup.latency))
            out[(label, level)] = statistics.mean(latencies) if latencies else 0.0
    return out


def run(scale: str = "small") -> Table:
    """Render the Figure 7 table (latency vs query locality)."""
    data = measurements(scale)
    table = Table(
        "Figure 7 — Latency (ms) vs query locality level",
        ["locality"] + [label for label, _, _ in SYSTEMS],
    )
    for level in LEVELS:
        name = "Top Level" if level == 0 else f"Level {level}"
        table.add_row(name, *(data[(label, level)] for label, _, _ in SYSTEMS))
    return table
