"""One module per paper figure/table (Section 5), each exposing

- ``run(scale) -> Table``: the paper-style result rows, and
- ``measurements(scale) -> dict``: raw numbers for programmatic assertions.

Run from the command line: ``python -m repro.experiments fig5 --scale small``.
"""

from . import (
    ablations,
    caching_study,
    churn_study,
    fig3_links,
    fig4_degree_pdf,
    fig5_hops,
    fig6_stretch,
    fig7_locality,
    fig8_overlap,
    fig9_multicast,
    inflight_study,
    isolation_study,
    scenario_zoo,
    serving_study,
    theorems,
    zoo,
)

EXPERIMENTS = {
    "ablations": ablations,
    "caching": caching_study,
    "churn": churn_study,
    "fig3": fig3_links,
    "fig4": fig4_degree_pdf,
    "fig5": fig5_hops,
    "fig6": fig6_stretch,
    "fig7": fig7_locality,
    "fig8": fig8_overlap,
    "fig9": fig9_multicast,
    "inflight": inflight_study,
    "isolation": isolation_study,
    "scenarios": scenario_zoo,
    "serve": serving_study,
    "theorems": theorems,
    "zoo": zoo,
}

__all__ = ["EXPERIMENTS"]
