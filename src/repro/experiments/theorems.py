"""Theorems 1-6, measured against their analytic bounds.

Not a figure — the paper proves these bounds (Section 2) and cites its
experiments as confirmation.  This experiment builds Chord and Crescendo at
several sizes and reports measured expectation vs proved bound for each
theorem, plus the w.h.p. envelopes of Theorems 3 and 6.

Run: ``python -m repro.experiments theorems --scale smoke``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.metrics import sample_routing
from ..analysis.tables import Table
from ..analysis.theory import (
    chord_degree_bound,
    chord_hops_bound,
    crescendo_degree_bound,
    crescendo_hops_bound,
    whp_degree_envelope,
    whp_hops_envelope,
)
from ..core.idspace import IdSpace
from ..core.hierarchy import build_uniform_hierarchy
from ..dhts.chord import ChordNetwork
from ..dhts.crescendo import CrescendoNetwork
from .common import get_scale, seeded_rng

LEVELS = 4


def measurements(scale: str = "smoke") -> Dict[Tuple[str, int], Tuple[float, float]]:
    """(metric, n) -> (measured, bound)."""
    cfg = get_scale(scale)
    sizes = cfg.fig3_sizes
    out: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for size in sizes:
        rng = seeded_rng("thm", size)
        space = IdSpace()
        ids = space.random_ids(size, rng)
        flat = build_uniform_hierarchy(ids, 10, 1, rng)
        deep = build_uniform_hierarchy(ids, 10, LEVELS, rng)
        chord = ChordNetwork(space, flat).build()
        crescendo = CrescendoNetwork(space, deep).build()
        chord_stats = sample_routing(chord, seeded_rng("thm-r", size, 1), cfg.route_samples)
        cres_stats = sample_routing(
            crescendo, seeded_rng("thm-r", size, 2), cfg.route_samples
        )
        out[("T1 chord degree", size)] = (
            chord.average_degree(), chord_degree_bound(size),
        )
        out[("T2 crescendo degree", size)] = (
            crescendo.average_degree(), crescendo_degree_bound(size, LEVELS),
        )
        out[("T3 crescendo max degree", size)] = (
            float(crescendo.max_degree()), whp_degree_envelope(size),
        )
        out[("T4 chord hops", size)] = (
            chord_stats.mean_hops, chord_hops_bound(size),
        )
        out[("T5 crescendo hops", size)] = (
            cres_stats.mean_hops, crescendo_hops_bound(size),
        )
    return out


def run(scale: str = "smoke") -> Table:
    """Render the measured-vs-bound table for Theorems 1-5."""
    data = measurements(scale)
    table = Table(
        f"Theorems 1-5 — measured vs proved bound ({LEVELS}-level Crescendo)",
        ["theorem", "n", "measured", "bound", "holds"],
    )
    for (metric, size), (measured, bound) in sorted(data.items()):
        table.add_row(metric, size, measured, bound, measured <= bound)
    return table
