"""Figure 6: routing latency and stretch on the transit-stub internet model.

Four systems: Chord and Crescendo, each with and without group-based
proximity adaptation.  Paper result: plain Chord's latency grows linearly in
log n (stretch 4.5 -> 8); plain Crescendo achieves near-constant stretch
(~2.7) because extra nodes only deepen the *local* rings; Chord (Prox.)
improves but still scales with log n; Crescendo (Prox.) is best and constant
(~1.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.metrics import stretch
from ..analysis.tables import Table
from ..core.routing import route_ring
from ..perf.executor import map_points
from ..proximity.groups import route_grouped
from .common import build_topology_setup, get_scale, seeded_rng

SYSTEMS = (
    ("Chord (No Prox.)", "chord", route_ring),
    ("Crescendo (No Prox.)", "crescendo", route_ring),
    ("Chord (Prox.)", "chord_prox", route_grouped),
    ("Crescendo (Prox.)", "crescendo_prox", route_grouped),
)


def _grid_point(point: Tuple[int, int]) -> Dict[str, Tuple[float, float]]:
    """All four systems at one network size (worker-safe).

    The whole size is one grid point because the four systems share a
    topology setup and one routing RNG whose state threads from system to
    system (exactly as the serial loop always did).
    """
    size, samples = point
    setup = build_topology_setup(size, "fig6")
    rng = seeded_rng("fig6-route", size)
    out: Dict[str, Tuple[float, float]] = {}
    for label, attr, router in SYSTEMS:
        net = getattr(setup, attr)
        out[label] = stretch(
            net,
            rng,
            setup.latency,
            setup.direct_latency,
            samples=samples,
            router=router,
            slo_label=attr,
        )
    return out


def measurements(
    scale: str = "small", jobs: Optional[int] = None
) -> Dict[Tuple[str, int], Tuple[float, float]]:
    """(system, n) -> (stretch, mean latency ms)."""
    cfg = get_scale(scale)
    points = [(size, cfg.route_samples) for size in cfg.fig6_sizes]
    values = map_points(_grid_point, points, jobs=jobs)
    out: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for (size, _), by_label in zip(points, values):
        for label, _, _ in SYSTEMS:
            out[(label, size)] = by_label[label]
    return out


def run(scale: str = "small", jobs: Optional[int] = None) -> Table:
    """Render the Figure 6 table (latency and stretch)."""
    cfg = get_scale(scale)
    data = measurements(scale, jobs=jobs)
    table = Table(
        "Figure 6 — Latency and stretch on the transit-stub model",
        ["n"]
        + [f"{label} stretch" for label, _, _ in SYSTEMS]
        + [f"{label} ms" for label, _, _ in SYSTEMS],
    )
    for size in cfg.fig6_sizes:
        table.add_row(
            size,
            *(data[(label, size)][0] for label, _, _ in SYSTEMS),
            *(data[(label, size)][1] for label, _, _ in SYSTEMS),
        )
    return table
