"""Figure 6: routing latency and stretch on the transit-stub internet model.

Four systems: Chord and Crescendo, each with and without group-based
proximity adaptation.  Paper result: plain Chord's latency grows linearly in
log n (stretch 4.5 -> 8); plain Crescendo achieves near-constant stretch
(~2.7) because extra nodes only deepen the *local* rings; Chord (Prox.)
improves but still scales with log n; Crescendo (Prox.) is best and constant
(~1.3).

Two grid transports exist, mirroring Figure 5.  The default hands each
worker a ``(size, samples)`` tuple and the worker builds its own
:class:`~repro.experiments.common.TopologySetup`.  With ``--arena`` (or
``arena=True``) the parent builds each size's setup once and exports the
transit-stub all-pairs router matrix — the one array all four systems of a
setup share, and by far its largest — into a shared-memory arena via
:func:`repro.perf.arena.export_latency_matrix`; workers wrap the attached
matrix in a :class:`~repro.perf.latency.LatencyTable` and measure over it
zero-copy.  Both transports produce bit-identical measurements (asserted
by ``tests/test_perf_arena.py`` and the CI diff smoke).
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Tuple

from ..analysis.metrics import stretch
from ..analysis.tables import Table
from ..core.routing import route_ring
from ..obs import trace as obs_trace
from ..perf import arena as perf_arena
from ..perf.executor import map_points
from ..perf.latency import LatencyTable
from ..proximity.groups import route_grouped
from .common import TopologySetup, build_topology_setup, get_scale, seeded_rng

logger = logging.getLogger("repro.experiments.fig6")

SYSTEMS = (
    ("Chord (No Prox.)", "chord", route_ring),
    ("Crescendo (No Prox.)", "crescendo", route_ring),
    ("Chord (Prox.)", "chord_prox", route_grouped),
    ("Crescendo (Prox.)", "crescendo_prox", route_grouped),
)


#: Parent-built setups for the arena transport, keyed by size.  Workers are
#: forked, so they inherit the Python-object side (networks, hierarchy,
#: router attachment) for free; only the latency matrix — the array whose
#: bytes dominate a setup — travels through the arena.
_SETUPS: Dict[int, TopologySetup] = {}


def _measure_setup(
    setup: TopologySetup, latency_fn, size: int, samples: int
) -> Dict[str, Tuple[float, float]]:
    """The four-system measurement loop shared by both transports.

    One routing RNG threads from system to system (exactly as the serial
    loop always did), so both transports draw the identical workload.
    """
    rng = seeded_rng("fig6-route", size)
    out: Dict[str, Tuple[float, float]] = {}
    for label, attr, router in SYSTEMS:
        net = getattr(setup, attr)
        out[label] = stretch(
            net,
            rng,
            latency_fn,
            setup.direct_latency,
            samples=samples,
            router=router,
            slo_label=attr,
        )
    return out


def _grid_point(point: Tuple[int, int]) -> Dict[str, Tuple[float, float]]:
    """All four systems at one network size (worker-safe).

    The whole size is one grid point because the four systems share a
    topology setup and one routing RNG whose state threads from system to
    system.
    """
    size, samples = point
    setup = build_topology_setup(size, "fig6")
    return _measure_setup(setup, setup.latency, size, samples)


def _arena_grid_point(point: Tuple[int, int]) -> Dict[str, Tuple[float, float]]:
    """All four systems at one size, latency read from the shared arena.

    The worker wraps the attached all-pairs matrix in a
    :class:`LatencyTable` carrying the fork-inherited node→router
    attachment.  The table is bit-identical to the parent's (same ids,
    routers, bytes), so every batch kernel gather and every scalar
    fallback call produces the same float64s as the object path.
    """
    size, samples = point
    setup = _SETUPS[size]
    arrays = perf_arena.attach(perf_arena.current_manifest(size))
    base = setup.topology.latency_table()
    table = LatencyTable(
        base.node_ids, base.routers, arrays["matrix"], host_ms=base.host_ms
    )
    return _measure_setup(setup, table, size, samples)


def measurements(
    scale: str = "small",
    jobs: Optional[int] = None,
    arena: Optional[bool] = None,
) -> Dict[Tuple[str, int], Tuple[float, float]]:
    """(system, n) -> (stretch, mean latency ms).

    ``arena`` selects the shared-memory grid transport (``None`` follows
    the process default set by the CLI ``--arena`` flag).  The parent owns
    every exported matrix segment and disposes them all when the grid
    returns — normally or not — so no shared memory outlives the call.
    """
    cfg = get_scale(scale)
    points = [(size, cfg.route_samples) for size in cfg.fig6_sizes]
    if arena is None:
        arena = perf_arena.default_enabled()
    if arena and obs_trace.active_tracer() is not None:
        logger.warning(
            "route tracing is active; arena workers cannot trace — "
            "falling back to the object-path grid"
        )
        arena = False
    if not arena:
        values = map_points(_grid_point, points, jobs=jobs)
    else:
        owners = []
        manifests: Dict[int, perf_arena.ArenaManifest] = {}
        try:
            for size, _ in points:
                setup = build_topology_setup(size, "fig6")
                _SETUPS[size] = setup
                owner = perf_arena.export_latency_matrix(
                    setup.topology.latency_table(), label="fig6lat"
                )
                owners.append(owner)
                manifests[size] = owner.manifest
            values = map_points(
                _arena_grid_point, points, jobs=jobs, arenas=manifests
            )
        finally:
            for owner in owners:
                owner.dispose()
            for size, _ in points:
                _SETUPS.pop(size, None)
    out: Dict[Tuple[str, int], Tuple[float, float]] = {}
    for (size, _), by_label in zip(points, values):
        for label, _, _ in SYSTEMS:
            out[(label, size)] = by_label[label]
    return out


def run(
    scale: str = "small",
    jobs: Optional[int] = None,
    arena: Optional[bool] = None,
) -> Table:
    """Render the Figure 6 table (latency and stretch)."""
    cfg = get_scale(scale)
    data = measurements(scale, jobs=jobs, arena=arena)
    table = Table(
        "Figure 6 — Latency and stretch on the transit-stub model",
        ["n"]
        + [f"{label} stretch" for label, _, _ in SYSTEMS]
        + [f"{label} ms" for label, _, _ in SYSTEMS],
    )
    for size in cfg.fig6_sizes:
        table.add_row(
            size,
            *(data[(label, size)][0] for label, _, _ in SYSTEMS),
            *(data[(label, size)][1] for label, _, _ in SYSTEMS),
        )
    return table
