"""Kandy — the Canonical version of Kademlia (Section 3.3).

Each node creates its links in its lowest-level domain just as dictated by
Kademlia; at successively higher levels it applies the Kademlia policy over
all nodes of that level's domain, discarding candidates already covered more
locally.

**Interpretation note** (see DESIGN.md §4).  The paper's one-line filter —
"throw away any candidate whose distance is larger than the shortest distance
link possessed at the lower level" — is sound for the ring metric, where the
node adjacent to a target always has a large own-ring *gap in the target's
direction*.  The XOR metric is symmetric and has no such directional gap: two
mutually-close nodes (e.g. 0000 and 0001) would both discard every candidate
toward a distant target (e.g. 1000) and greedy XOR routing would strand.  We
therefore apply the threshold *per bucket*: a node takes its bucket-k contact
from the **lowest enclosing domain in which bucket k is non-empty**.  This
preserves the construction's intent — local links preferred, one contact per
globally non-empty bucket, degree ~ log n, intra-domain path locality — and
makes greedy XOR routing provably convergent: if the target lies in bucket k
of the current node, the node's bucket-k contact agrees with the target on
bit k and everything above it, strictly shrinking the XOR distance.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace
from ..core.network import DHTNetwork
from .kademlia import bucket_members_range, choose_bucket_contact


class KandyNetwork(DHTNetwork):
    """Static construction of Kandy over the conceptual hierarchy."""

    metric = "xor"
    family = "kandy"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        rng=None,
        bucket_size: int = 1,
        use_numpy: bool = True,
    ) -> None:
        super().__init__(space, hierarchy)
        self.rng = rng
        self.bucket_size = bucket_size
        self.use_numpy = use_numpy
        #: node -> bucket index -> depth of the domain the contact came from
        #: (exposed for the locality analysis and tests).
        self.contact_depth: Dict[int, Dict[int, int]] = {}

    def build(self) -> "KandyNetwork":
        """Populate the link table per this construction's rule."""
        space = self.space
        # Deterministic multi-contact buckets (rng None, bucket_size > 1)
        # stay on the reference path; every other flavour has a bulk builder.
        if self._use_bulk() and (self.rng is not None or self.bucket_size == 1):
            from ..perf.build import kandy_link_sets

            self.built_with = "numpy"
            link_sets, self.contact_depth = kandy_link_sets(
                self.node_ids, space, self.hierarchy, self.rng, self.bucket_size
            )
            self._finalize_links(link_sets)
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {}
        self.contact_depth = {}
        for node in self.node_ids:
            links: Set[int] = set()
            depths: Dict[int, int] = {}
            chain = self.hierarchy.ancestor_chain(node)  # leaf domain first
            for k in range(space.bits):
                for domain_path in chain:
                    members = self.hierarchy.sorted_members(domain_path)
                    i, j = bucket_members_range(node, k, members, space)
                    if i == j:
                        continue
                    contacts = choose_bucket_contact(
                        node, k, members, space, self.rng, self.bucket_size
                    )
                    links.update(contacts)
                    depths[k] = len(domain_path)
                    break  # lowest enclosing domain with a non-empty bucket
            link_sets[node] = links
            self.contact_depth[node] = depths
        self._finalize_links(link_sets)
        return self
