"""Can-Can — the Canonical version of CAN (Section 3.4).

"Traditional CAN edges are constructed at the lowest level of the hierarchy,
and a node creates a link at a higher level only if it is a valid CAN edge
and is shorter than the shortest link at the lower level."

As with Kandy (see that module's interpretation note and DESIGN.md §4), the
sound reading for a symmetric metric is *per dimension*: for each bit
position i of its identifier, a node links into the sibling subtree at depth
i using a valid CAN (hypercube) edge taken from the **lowest enclosing domain
that contains one**.  Higher-level edges are therefore created only for the
dimensions the local domain cannot cover, which is exactly the Canon economy:
total degree matches flat CAN's dimension count while paths between
same-domain nodes stay inside the domain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace
from ..core.network import DHTNetwork
from .can import CANNetwork, PrefixId, PrefixTree, are_adjacent


def differing_bit(a: PrefixId, b: PrefixId) -> Optional[int]:
    """The single differing bit position between adjacent prefixes.

    Returns ``None`` when the prefixes are not hypercube-adjacent.
    """
    short = min(a.length, b.length)
    diff = (a.value >> (a.length - short)) ^ (b.value >> (b.length - short))
    if diff == 0 or diff & (diff - 1):
        return None
    return short - diff.bit_length()


class CanCanNetwork(CANNetwork):
    """Can-Can: lowest-domain hypercube edge per identifier bit.

    Inherits bit-fixing routing and key responsibility from
    :class:`~repro.dhts.can.CANNetwork`; only link construction differs.
    """

    family = "cancan"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        prefixes: Dict[int, PrefixId],
        rng=None,
        use_numpy: bool = True,
    ) -> None:
        super().__init__(space, hierarchy, prefixes, use_numpy=use_numpy)
        self.rng = rng
        #: node -> bit position -> depth of the domain the edge came from.
        self.edge_depth: Dict[int, Dict[int, int]] = {}

    def build(self) -> "CanCanNetwork":
        """Populate the link table per this construction's rule."""
        if self._use_bulk():
            from ..perf.build import cancan_link_sets

            self.built_with = "numpy"
            lengths = [self.prefixes[node].length for node in self.node_ids]
            link_sets, self.edge_depth = cancan_link_sets(
                self.node_ids, lengths, self.space, self.hierarchy, self.rng
            )
            self._finalize_links(link_sets)
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        self.edge_depth = {}
        for node in self.node_ids:
            prefix = self.prefixes[node]
            chosen: Dict[int, int] = {}
            depths: Dict[int, int] = {}
            for domain_path in self.hierarchy.ancestor_chain(node):
                members = self.hierarchy.sorted_members(domain_path)
                candidates = self._adjacent_by_bit(node, prefix, members)
                for bit, options in candidates.items():
                    if bit in chosen:
                        continue  # already covered by a lower (more local) domain
                    chosen[bit] = (
                        self.rng.choice(options) if self.rng else options[0]
                    )
                    depths[bit] = len(domain_path)
            link_sets[node].update(chosen.values())
            self.edge_depth[node] = depths
        self._finalize_links(link_sets)
        return self

    def _adjacent_by_bit(
        self, node: int, prefix: PrefixId, members: List[int]
    ) -> Dict[int, List[int]]:
        """Hypercube-adjacent members of a domain, grouped by differing bit."""
        out: Dict[int, List[int]] = {}
        for other in members:
            if other == node:
                continue
            bit = differing_bit(prefix, self.prefixes[other])
            if bit is not None:
                out.setdefault(bit, []).append(other)
        return out


def build_cancan(
    space: IdSpace,
    count: int,
    rng,
    domain_paths: List[Tuple[str, ...]],
    align_domains: bool = True,
    use_numpy: bool = True,
) -> CanCanNetwork:
    """Grow a prefix tree and build a Can-Can over the given placements.

    With ``align_domains`` (the default), identifiers are allocated so each
    domain owns a contiguous subtree of the prefix tree — CAN's equivalent of
    "nodes in a domain form a DHT by themselves", and the precondition for
    strict intra-domain path locality (a hypercube edge fixing a bit inside
    the domain's subtree cannot leave the subtree).  Without it, classic
    random-point splits are used and locality is only statistical.
    """
    if len(domain_paths) != count:
        raise ValueError("need exactly one domain path per node")
    tree = PrefixTree(space.bits)
    if align_domains:
        leaves = tree.grow_aligned(domain_paths, rng)
    else:
        leaves = tree.grow(count, rng)
    hierarchy = Hierarchy()
    prefixes: Dict[int, PrefixId] = {}
    for i, leaf in enumerate(leaves):
        padded = leaf.padded(space.bits)
        prefixes[padded] = leaf
        hierarchy.place(padded, domain_paths[i])
    return CanCanNetwork(space, hierarchy, prefixes, rng, use_numpy=use_numpy).build()
