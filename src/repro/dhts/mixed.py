"""Mixed-level routing structures (Section 3.5).

Canon places no requirement that the routing structure be the same at every
level of the hierarchy.  The motivating example: nodes in the same
lowest-level domain are on one LAN, where efficient broadcast makes a
*complete graph* cheap; the LANs are then merged at higher levels with the
ordinary Crescendo rules.  At the lowest level routing reaches the right LAN
node in one hop; above it, greedy clockwise routing proceeds as usual.
"""

from __future__ import annotations

from typing import Dict, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork


class LanCrescendoNetwork(DHTNetwork):
    """Complete-graph LANs at the leaf level, Crescendo merges above.

    Each node's own-ring gap after the LAN level is its successor distance
    within the LAN, exactly as in Crescendo, so the merge economy and the
    locality/convergence properties are unchanged; only the leaf structure
    (and its one-hop routing) differs.
    """

    metric = "ring"
    family = "mixed"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.use_numpy = use_numpy
        self.gap: Dict[int, int] = {}

    def build(self) -> "LanCrescendoNetwork":
        """Populate the link table per this construction's rule."""
        space = self.space
        if self._use_bulk():
            from ..perf.build import lan_crescendo_link_sets

            self.built_with = "numpy"
            link_sets, self.gap = lan_crescendo_link_sets(
                self.node_ids, space, self.hierarchy
            )
            self._finalize_links(link_sets)
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        self.gap = {node: space.size for node in self.node_ids}
        depth_of = {node: len(self.hierarchy.path_of(node)) for node in self.node_ids}

        domains = sorted(self.hierarchy.domains(), key=lambda d: -d.depth)
        for domain in domains:
            members = self.hierarchy.sorted_members(domain.path)
            if not members:
                continue
            population = len(members)
            for pos, node in enumerate(members):
                if depth_of[node] == domain.depth:
                    # LAN level: complete graph over the domain.
                    link_sets[node].update(m for m in members if m != node)
                else:
                    # Crescendo merge: union fingers inside the own-ring gap.
                    gap = self.gap[node]
                    k = 0
                    while (1 << k) < gap and k < space.bits:
                        target = space.add(node, 1 << k)
                        succ = members[successor_index(members, target)]
                        if succ != node and space.ring_distance(node, succ) < gap:
                            link_sets[node].add(succ)
                        k += 1
                successor = members[(pos + 1) % population]
                self.gap[node] = (
                    space.ring_distance(node, successor)
                    if successor != node
                    else space.size
                )
        self._finalize_links(link_sets)
        return self
