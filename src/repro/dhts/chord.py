"""Flat Chord (Stoica et al., SIGCOMM 2001) — the paper's primary baseline.

Each node with identifier ``m`` maintains a link to the closest node at least
clockwise distance ``2**k`` away, for each ``0 <= k < N`` (Section 2.1).
Routing is greedy clockwise (:func:`repro.core.routing.route_ring`).

Theorem 1 of the paper: expected node degree is at most ``log2(n-1) + 1``.
Theorem 4: expected routing hops are at most ``0.5*log2(n-1) + 0.5``.
Both are validated empirically in ``tests/test_theorems.py``.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork


def ring_finger_targets(node_id: int, space: IdSpace) -> List[int]:
    """Chord finger targets ``(m + 2**k) mod 2**N`` for ``0 <= k < N``."""
    return [space.add(node_id, 1 << k) for k in range(space.bits)]


def finger_links(node_id: int, sorted_ids: List[int], space: IdSpace) -> Set[int]:
    """Distinct Chord links of ``node_id`` over the given sorted ring members.

    For each ``k``, the link target is the cyclic successor of
    ``node_id + 2**k`` among ``sorted_ids``; when that successor is the node
    itself no other node lies at distance >= 2**k, and no link is formed.
    """
    links: Set[int] = set()
    for target in ring_finger_targets(node_id, space):
        succ = sorted_ids[successor_index(sorted_ids, target)]
        if succ != node_id:
            links.add(succ)
    return links


def bulk_finger_links(
    sorted_ids: np.ndarray, space: IdSpace
) -> Dict[int, Set[int]]:
    """Vectorised :func:`finger_links` for every member of a ring at once."""
    n = len(sorted_ids)
    if n <= 1:
        return {int(i): set() for i in sorted_ids}
    ks = (np.uint64(1) << np.arange(space.bits, dtype=np.uint64))
    targets = (sorted_ids[:, None].astype(np.uint64) + ks[None, :]) % np.uint64(
        space.size
    )
    idx = np.searchsorted(sorted_ids, targets)
    idx[idx == n] = 0
    succ = sorted_ids[idx]
    out: Dict[int, Set[int]] = {}
    for row, node in enumerate(sorted_ids):
        node = int(node)
        out[node] = {int(s) for s in succ[row] if int(s) != node}
    return out


class ChordNetwork(DHTNetwork):
    """A flat Chord ring over every node in the hierarchy.

    The hierarchy is ignored for link construction (flat design); it is still
    carried so the analysis layer can measure Chord's (lack of) path locality
    against the same placements used for Crescendo.
    """

    metric = "ring"
    family = "chord"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.use_numpy = use_numpy

    def build(self) -> "ChordNetwork":
        """Populate the link table per this construction's rule."""
        if self._use_bulk():
            self.built_with = "numpy"
            arr = np.array(self.node_ids, dtype=np.uint64)
            link_sets = bulk_finger_links(arr, self.space)
        else:
            self.built_with = "python"
            link_sets = {
                node: finger_links(node, self.node_ids, self.space)
                for node in self.node_ids
            }
        self._finalize_links(link_sets)
        return self

    def successor_list(self, node_id: int, length: int = 4) -> List[int]:
        """The node's leaf set: its next ``length`` successors on the ring.

        Used for failure repair; per Section 2.3 these are not counted as
        links.
        """
        ids = self.node_ids
        pos = successor_index(ids, self.space.add(node_id, 1))
        return [ids[(pos + i) % len(ids)] for i in range(min(length, len(ids) - 1))]
