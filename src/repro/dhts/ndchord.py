"""Nondeterministic Chord and its Canonical version (Section 3.2).

In nondeterministic Chord (used by CFS and studied by Gummadi et al.), a node
links to *any* node with clockwise distance in ``[2**(k-1), 2**k)`` for each
``k``, instead of deterministically to the closest node at least ``2**(k-1)``
away.  Routing properties are almost identical to Symphony.

Nondeterministic Crescendo applies the Canon merge: when rings merge, a node
``m`` may exercise its nondeterministic choice *only among nodes closer than
any node in its own ring* — i.e. the candidate range for octave k shrinks to
``[2**k, min(2**(k+1), gap))`` where ``gap`` is the distance to m's own-ring
successor (the paper's example: with the closest own-ring node at distance
12, the octave [8, 16) shrinks to [8, 12)).

Both variants keep an explicit successor link per level (the k = 0 octave can
be empty, and greedy clockwise routing needs the successor for guaranteed
progress; flat ND-Chord deployments keep successor lists for the same
reason).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork


def annulus_choice(
    node_id: int,
    members: List[int],
    lo: int,
    hi: int,
    space: IdSpace,
    rng,
) -> Optional[int]:
    """A uniformly random member at clockwise distance in ``[lo, hi)``.

    ``members`` must be sorted.  Returns ``None`` when the annulus is empty.
    ``lo`` must be >= 1 so the node itself is never a candidate.
    """
    if lo < 1:
        raise ValueError("annulus lower bound must be >= 1")
    hi = min(hi, space.size)
    if hi <= lo or len(members) < 2:
        return None
    start = successor_index(members, space.add(node_id, lo))
    end = successor_index(members, space.add(node_id, hi))
    count = (end - start) % len(members)
    if count == 0:
        # Either empty or the annulus covers every member: disambiguate.
        first = members[start]
        if lo <= space.ring_distance(node_id, first) < hi:
            count = len(members)
        else:
            return None
    pick = (start + rng.randrange(count)) % len(members)
    candidate = members[pick]
    return None if candidate == node_id else candidate


class NDChordNetwork(DHTNetwork):
    """Flat nondeterministic Chord: one random link per distance octave."""

    metric = "ring"
    family = "ndchord"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, rng, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.rng = rng
        self.use_numpy = use_numpy

    def build(self) -> "NDChordNetwork":
        """Populate the link table per this construction's rule."""
        members = self.node_ids
        population = len(members)
        if self._use_bulk():
            from ..perf.build import ndchord_link_sets

            self.built_with = "numpy"
            self._finalize_links(ndchord_link_sets(members, self.space, self.rng))
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {}
        for pos, node in enumerate(members):
            links: Set[int] = set()
            for k in range(self.space.bits):
                choice = annulus_choice(
                    node, members, 1 << k, 1 << (k + 1), self.space, self.rng
                )
                if choice is not None:
                    links.add(choice)
            successor = members[(pos + 1) % population]
            if successor != node:
                links.add(successor)
            link_sets[node] = links
        self._finalize_links(link_sets)
        return self


class NDCrescendoNetwork(DHTNetwork):
    """Canonical nondeterministic Chord (nondeterministic Crescendo)."""

    metric = "ring"
    family = "ndcrescendo"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, rng, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.rng = rng
        self.use_numpy = use_numpy
        self.gap: Dict[int, int] = {}

    def build(self) -> "NDCrescendoNetwork":
        """Populate the link table per this construction's rule."""
        space = self.space
        if self._use_bulk():
            from ..perf.build import ndcrescendo_link_sets

            self.built_with = "numpy"
            link_sets, self.gap = ndcrescendo_link_sets(
                self.node_ids, space, self.hierarchy, self.rng
            )
            self._finalize_links(link_sets)
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        self.gap = {node: space.size for node in self.node_ids}
        depth_of = {node: len(self.hierarchy.path_of(node)) for node in self.node_ids}

        domains = sorted(self.hierarchy.domains(), key=lambda d: -d.depth)
        for domain in domains:
            members = self.hierarchy.sorted_members(domain.path)
            if not members:
                continue
            population = len(members)
            for pos, node in enumerate(members):
                gap = self.gap[node]
                is_leaf_ring = depth_of[node] == domain.depth
                for k in range(space.bits):
                    lo = 1 << k
                    if not is_leaf_ring and lo >= gap:
                        break
                    hi = 1 << (k + 1)
                    if not is_leaf_ring:
                        # The nondeterministic choice is restricted to nodes
                        # closer than any node in the node's own ring.
                        hi = min(hi, gap)
                    choice = annulus_choice(node, members, lo, hi, space, self.rng)
                    if choice is not None:
                        link_sets[node].add(choice)
                successor = members[(pos + 1) % population]
                if successor != node:
                    new_gap = space.ring_distance(node, successor)
                    if is_leaf_ring or new_gap < gap:
                        link_sets[node].add(successor)
                    self.gap[node] = new_gap
                else:
                    self.gap[node] = space.size
        self._finalize_links(link_sets)
        return self
