"""Cacophony — the Canonical version of Symphony (Section 3.1).

Each node creates links in its lowest-level domain exactly as in Symphony,
but drawing only ``floor(log2 n_l)`` long links, where ``n_l`` is the number
of nodes in that domain.  At each higher level it draws ``floor(log2 n_level)``
candidates by the same harmonic process over that level's ring, *retains only
those closer than its successor at the lower level*, and additionally links
to its successor at the new level.  The iteration continues to the root.

Like Symphony, Cacophony routes greedily clockwise and supports greedy
routing with a one-step lookahead for O(log n / log log n) hops.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace
from ..core.network import DHTNetwork
from .symphony import draw_long_links


class CacophonyNetwork(DHTNetwork):
    """Static construction of a Cacophony ring over the hierarchy."""

    metric = "ring"
    family = "cacophony"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, rng, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.rng = rng
        self.use_numpy = use_numpy
        #: Clockwise distance to the node's own-ring successor (see Crescendo).
        self.gap: Dict[int, int] = {}

    def build(self) -> "CacophonyNetwork":
        """Populate the link table per this construction's rule."""
        space = self.space
        if self._use_bulk():
            from ..perf.build import cacophony_link_sets

            self.built_with = "numpy"
            link_sets, self.gap = cacophony_link_sets(
                self.node_ids, space, self.hierarchy, self.rng
            )
            self._finalize_links(link_sets)
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        self.gap = {node: space.size for node in self.node_ids}
        depth_of = {node: len(self.hierarchy.path_of(node)) for node in self.node_ids}

        domains = sorted(self.hierarchy.domains(), key=lambda d: -d.depth)
        for domain in domains:
            members = self.hierarchy.sorted_members(domain.path)
            if not members:
                continue
            population = len(members)
            count = max(1, int(math.log2(population))) if population > 1 else 0
            for pos, node in enumerate(members):
                if depth_of[node] < domain.depth:
                    continue  # node not in this domain's subtree chain
                is_leaf_ring = depth_of[node] == domain.depth
                drawn = draw_long_links(node, members, count, space, self.rng)
                if is_leaf_ring:
                    link_sets[node].update(drawn)
                else:
                    gap = self.gap[node]
                    link_sets[node].update(
                        link
                        for link in drawn
                        if space.ring_distance(node, link) < gap
                    )
                successor = members[(pos + 1) % population]
                if successor != node:
                    # Always link the successor at the new level (Section 3.1).
                    link_sets[node].add(successor)
                    self.gap[node] = space.ring_distance(node, successor)
                else:
                    self.gap[node] = space.size
        self._finalize_links(link_sets)
        return self
