"""Flat Symphony (Manku, Bawa & Raghavan, USITS 2003).

A randomized small-world ring: each node creates ``floor(log2 n)`` long links
drawn independently from the harmonic distribution (the probability of
linking to a node at clockwise distance d is proportional to 1/d), plus a
link to its immediate successor.  Routing is greedy clockwise, optionally
with the one-step lookahead of Section 3.1 (O(log n / log log n) hops).
"""

from __future__ import annotations

import math
from typing import List, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork

#: Attempts per requested long link before giving up on distinctness.
_MAX_DRAWS = 64


def _note_short_draws(missing: int) -> None:
    """Count long links abandoned because the distinctness budget ran out.

    Tiny or clustered rings can exhaust ``_MAX_DRAWS`` attempts per link and
    come up short; that silently thins the degree distribution, so both the
    scalar and bulk builders report it via the ``build.symphony.short_draws``
    counter for post-hoc inspection (``repro.obs.metrics``).
    """
    from ..obs.metrics import active_registry

    registry = active_registry()
    if registry is not None:
        registry.counter("build.symphony.short_draws").inc(missing)


def harmonic_distance(space: IdSpace, population: int, rng) -> int:
    """Draw a clockwise distance from Symphony's harmonic distribution.

    Uses the inverse-CDF form ``x = n**(u-1)`` on the unit ring, scaled to
    the ID space: the pdf of x is ``1/(x ln n)`` on ``[1/n, 1]``.
    """
    if population < 2:
        return 1
    fraction = population ** (rng.random() - 1.0)
    return max(1, int(fraction * space.size))


def draw_long_links(
    node_id: int,
    members: List[int],
    count: int,
    space: IdSpace,
    rng,
) -> Set[int]:
    """Draw ``count`` distinct harmonic long links for ``node_id`` over a ring."""
    links: Set[int] = set()
    population = len(members)
    if population < 2:
        return links
    attempts = 0
    while len(links) < count and attempts < count * _MAX_DRAWS:
        attempts += 1
        distance = harmonic_distance(space, population, rng)
        target = space.add(node_id, distance)
        succ = members[successor_index(members, target)]
        if succ != node_id:
            links.add(succ)
    if len(links) < count:
        _note_short_draws(count - len(links))
    return links


def estimate_population(
    node_id: int, members: List[int], space: IdSpace, probes: int = 3
) -> float:
    """Symphony's cheap population estimate from local ring density.

    Both Symphony and Cacophony need n (or n_level) to size their harmonic
    draws; the paper notes "it is possible to perform this estimation
    cheaply and accurately".  The standard estimator: the expected clockwise
    gap between ring neighbors is ``2**bits / n``, so the inverse of the
    mean over the node's next few successors estimates n.
    """
    if len(members) < 2:
        return float(len(members))
    position = members.index(node_id)
    gaps = []
    for i in range(min(probes, len(members) - 1)):
        a = members[(position + i) % len(members)]
        b = members[(position + i + 1) % len(members)]
        gaps.append(space.ring_distance(a, b) or space.size)
    return space.size / (sum(gaps) / len(gaps))


class SymphonyNetwork(DHTNetwork):
    """A flat Symphony ring over all nodes.

    ``links_per_node`` defaults to the paper's ``floor(log2 n)``; Symphony's
    cheap population estimation protocol is replaced by the true count (the
    paper notes the estimate is accurate).
    """

    metric = "ring"
    family = "symphony"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        rng,
        links_per_node: int = 0,
        use_numpy: bool = True,
    ) -> None:
        super().__init__(space, hierarchy)
        self.rng = rng
        self.links_per_node = links_per_node
        self.use_numpy = use_numpy

    def build(self) -> "SymphonyNetwork":
        """Populate the link table per this construction's rule."""
        members = self.node_ids
        population = len(members)
        count = self.links_per_node or max(1, int(math.log2(max(2, population))))
        if self._use_bulk():
            from ..perf.build import symphony_link_sets

            self.built_with = "numpy"
            self._finalize_links(
                symphony_link_sets(members, count, self.space, self.rng)
            )
            return self
        self.built_with = "python"
        link_sets = {}
        for pos, node in enumerate(members):
            links = draw_long_links(node, members, count, self.space, self.rng)
            links.add(members[(pos + 1) % population])  # successor (short link)
            link_sets[node] = links
        self._finalize_links(link_sets)
        return self
