"""Flat Kademlia (Maymounkov & Mazieres, IPTPS 2002).

Distance between nodes is the XOR of their identifiers.  Each node maintains
a link to a node with XOR distance in ``[2**k, 2**(k+1))`` for each ``k`` —
the *k-bucket* — whenever that bucket is non-empty.  (Real Kademlia keeps
multiple contacts per bucket for resilience; like the paper, we model one,
with an optional ``bucket_size`` for the failure experiments.)  Routing
greedily shrinks the XOR distance.

Bucket k of node m is exactly the set of nodes that agree with m on all bits
above k and differ at bit k — a *contiguous range* of the sorted identifier
list, which makes construction O(n log n) per bucket.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork


def bucket_bounds(node_id: int, k: int, space: IdSpace) -> Tuple[int, int]:
    """The identifier interval ``[lo, hi)`` forming bucket ``k`` of a node.

    Members share the node's bits above position ``k`` and differ at ``k``;
    XOR distance to the node is therefore in ``[2**k, 2**(k+1))``.
    """
    flipped = node_id ^ (1 << k)
    lo = (flipped >> k) << k
    return lo, lo + (1 << k)


def bucket_members_range(
    node_id: int, k: int, members: List[int], space: IdSpace
) -> Tuple[int, int]:
    """Index range ``[i, j)`` of bucket-k members in a sorted id list."""
    lo, hi = bucket_bounds(node_id, k, space)
    i = successor_index(members, lo)
    if members[i] < lo:  # wrapped: nothing >= lo
        return 0, 0
    j = i
    while j < len(members) and members[j] < hi:
        j += 1
    return i, j


def choose_bucket_contact(
    node_id: int,
    k: int,
    members: List[int],
    space: IdSpace,
    rng=None,
    count: int = 1,
) -> List[int]:
    """Up to ``count`` contacts from bucket ``k`` over a sorted member list.

    With an ``rng`` the contacts are drawn at random (Kademlia's
    nondeterministic flavour); without one the XOR-closest members are taken.
    """
    i, j = bucket_members_range(node_id, k, members, space)
    candidates = members[i:j]
    if not candidates:
        return []
    if rng is None:
        return sorted(candidates, key=lambda c: space.xor_distance(node_id, c))[:count]
    if len(candidates) <= count:
        return list(candidates)
    return list(rng.sample(candidates, count))


def find_closest(network: DHTNetwork, src: int, key: int, width: int = 3) -> int:
    """Iterative Kademlia node lookup: the XOR-closest node to ``key``.

    Greedy forwarding alone can stop one node short of the global closest
    for a *key* target (the last bucket holds one arbitrary contact), which
    is why Kademlia's FIND_NODE explores a shortlist of the ``width`` best
    candidates in parallel and keeps the closest seen.  Terminates when the
    ``width`` closest known nodes have all been queried.
    """
    space = network.space
    shortlist = {src}
    queried: set = set()
    while True:
        best_known = min(shortlist, key=lambda n: space.xor_distance(n, key))
        frontier = sorted(
            (n for n in shortlist if n not in queried),
            key=lambda n: space.xor_distance(n, key),
        )[:width]
        if not frontier:
            return best_known
        if best_known in queried and space.xor_distance(
            frontier[0], key
        ) > space.xor_distance(best_known, key):
            return best_known
        for node in frontier:
            queried.add(node)
            shortlist.update(network.links[node])


class KademliaNetwork(DHTNetwork):
    """A flat Kademlia network: one (or ``bucket_size``) contacts per bucket."""

    metric = "xor"
    family = "kademlia"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        rng=None,
        bucket_size: int = 1,
        use_numpy: bool = True,
    ) -> None:
        super().__init__(space, hierarchy)
        self.rng = rng
        self.bucket_size = bucket_size
        self.use_numpy = use_numpy

    def build(self) -> "KademliaNetwork":
        """Populate the link table per this construction's rule."""
        members = self.node_ids
        # Deterministic multi-contact buckets (rng None, bucket_size > 1)
        # stay on the reference path; every other flavour has a bulk builder.
        if self._use_bulk() and (self.rng is not None or self.bucket_size == 1):
            from ..perf.build import kademlia_link_sets

            self.built_with = "numpy"
            self._finalize_links(
                kademlia_link_sets(members, self.space, self.rng, self.bucket_size)
            )
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {}
        for node in members:
            links: Set[int] = set()
            for k in range(self.space.bits):
                links.update(
                    choose_bucket_contact(
                        node, k, members, self.space, self.rng, self.bucket_size
                    )
                )
            link_sets[node] = links
        self._finalize_links(link_sets)
        return self
