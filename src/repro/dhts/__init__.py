"""DHT constructions: the flat baselines and their Canonical versions.

Flat:  Chord, Symphony, nondeterministic Chord, Kademlia, CAN.
Canon: Crescendo, Cacophony, ND-Crescendo, Kandy, Can-Can — plus the
Section 3.5 mixed-level variant (complete-graph LANs under Crescendo).
"""

from .cacophony import CacophonyNetwork
from .can import CANNetwork, PrefixId, PrefixTree, build_can
from .cancan import CanCanNetwork, build_cancan
from .chord import ChordNetwork
from .crescendo import CrescendoNetwork
from .kademlia import KademliaNetwork
from .kandy import KandyNetwork
from .mixed import LanCrescendoNetwork
from .naive import NaiveHierarchicalChord
from .ndchord import NDChordNetwork, NDCrescendoNetwork
from .symphony import SymphonyNetwork

__all__ = [
    "CANNetwork",
    "CacophonyNetwork",
    "CanCanNetwork",
    "ChordNetwork",
    "CrescendoNetwork",
    "KademliaNetwork",
    "KandyNetwork",
    "LanCrescendoNetwork",
    "NaiveHierarchicalChord",
    "NDChordNetwork",
    "NDCrescendoNetwork",
    "PrefixId",
    "PrefixTree",
    "SymphonyNetwork",
    "build_can",
    "build_cancan",
]
