"""The strawman Canon motivates against: naive hierarchical Chord.

The obvious way to get per-domain rings is to build a *full* Chord ring at
every level of the hierarchy — each node keeps complete Chord fingers in its
leaf domain, its parent domain, …, and the global ring.  That gives the same
locality and convergence properties as Crescendo, but the per-node state is
~levels x log2(n) links instead of ~log2(n): exactly the cost Canon's
condition (b) eliminates.  This network exists for the ablation benchmarks
(`benchmarks/test_ablations.py`) that quantify the Canon merge's economy.
"""

from __future__ import annotations

from typing import Dict, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork


class NaiveHierarchicalChord(DHTNetwork):
    """Full Chord fingers at every level (no Canon merge economy)."""

    metric = "ring"
    family = "naive"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.use_numpy = use_numpy

    def build(self) -> "NaiveHierarchicalChord":
        """Populate the link table per this construction's rule."""
        space = self.space
        if self._use_bulk():
            from ..perf.build import naive_link_sets

            self.built_with = "numpy"
            self._finalize_links(naive_link_sets(self.node_ids, space, self.hierarchy))
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        for node in self.node_ids:
            path = self.hierarchy.path_of(node)
            for depth in range(len(path), -1, -1):
                members = self.hierarchy.sorted_members(path[:depth])
                if len(members) < 2:
                    continue
                for k in range(space.bits):
                    target = space.add(node, 1 << k)
                    succ = members[successor_index(members, target)]
                    if succ != node:
                        link_sets[node].add(succ)
        self._finalize_links(link_sets)
        return self
