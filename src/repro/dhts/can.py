"""Flat CAN, generalised to logarithmic degree (Section 3.4).

Node identifiers form a *binary prefix tree*: a binary tree with left
branches labelled 0 and right branches labelled 1; the root-to-leaf path is
the node's ID, so IDs have different lengths.  A node with a short ID stands
for multiple *virtual nodes*, one per padding of its ID to full length.
Edges are hypercube edges between virtual nodes — two (real) nodes are
adjacent iff some pair of their paddings differs in exactly one bit, which
reduces to: their prefixes truncated to the shorter length differ in exactly
one bit position.

Routing is left-to-right bit fixing on the key (equivalently greedy routing
under the XOR metric over padded identifiers): each hop extends the common
prefix with the destination key by at least one bit.

The prefix tree doubles as the partition map: a leaf with prefix p of length
L is responsible for keys in ``[p << (N-L), (p+1) << (N-L))``, and splitting
a leaf on join bisects its partition — exactly the balanced-partition scheme
of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace
from ..core.network import DHTNetwork
from ..core.routing import MAX_HOPS, Route


@dataclass(frozen=True)
class PrefixId:
    """A variable-length binary identifier: ``value`` over ``length`` bits."""

    value: int
    length: int

    def bit(self, i: int) -> int:
        """Bit at position ``i``, counted from the most significant (0)."""
        if not 0 <= i < self.length:
            raise IndexError(f"bit {i} outside prefix of length {self.length}")
        return (self.value >> (self.length - 1 - i)) & 1

    def padded(self, bits: int) -> int:
        """Canonical zero-padding of the prefix to ``bits`` bits."""
        return self.value << (bits - self.length)

    def interval(self, bits: int) -> Tuple[int, int]:
        """The key interval ``[lo, hi)`` owned by this prefix."""
        lo = self.value << (bits - self.length)
        return lo, lo + (1 << (bits - self.length))

    def contains_key(self, key: int, bits: int) -> bool:
        """Whether ``key`` falls in this prefix's owned interval."""
        lo, hi = self.interval(bits)
        return lo <= key < hi

    def child(self, bit: int) -> "PrefixId":
        """The prefix extended by one bit."""
        return PrefixId((self.value << 1) | bit, self.length + 1)

    def __str__(self) -> str:
        return format(self.value, f"0{self.length}b") if self.length else "ε"


class PrefixTree:
    """The binary prefix tree allocating CAN identifiers.

    Joins split an existing leaf in two (bisecting its partition); leaves are
    the live nodes.  Splitting policy is pluggable: ``"random"`` splits the
    leaf owning a random point (classic CAN join); ``"largest"`` splits a
    largest partition (the balanced scheme of Section 4.3, ratio <= 2 here
    since every split is an exact bisection of a largest cell).
    """

    def __init__(self, bits: int) -> None:
        self.bits = bits
        self.leaves: Set[PrefixId] = set()

    def first(self) -> PrefixId:
        """Create the root leaf (the first node owns everything)."""
        if self.leaves:
            raise RuntimeError("tree already has leaves")
        root = PrefixId(0, 0)
        self.leaves.add(root)
        return root

    def leaf_for_key(self, key: int) -> PrefixId:
        """The live leaf whose interval contains ``key``."""
        for leaf in self.leaves:
            if leaf.contains_key(key, self.bits):
                return leaf
        raise KeyError(f"no leaf owns key {key}")

    def split(self, leaf: PrefixId) -> Tuple[PrefixId, PrefixId]:
        """Split ``leaf`` into its two children; returns (old-half, new-half)."""
        if leaf not in self.leaves:
            raise KeyError(f"{leaf} is not a live leaf")
        if leaf.length >= self.bits:
            raise RuntimeError("cannot split a full-length identifier")
        self.leaves.remove(leaf)
        left, right = leaf.child(0), leaf.child(1)
        self.leaves.update((left, right))
        return left, right

    def grow(self, count: int, rng, policy: str = "random") -> List[PrefixId]:
        """Grow the tree to ``count`` leaves via successive joins."""
        if policy not in ("random", "largest"):
            raise ValueError(f"unknown split policy {policy!r}")
        if not self.leaves:
            self.first()
        while len(self.leaves) < count:
            if policy == "largest":
                victim = min(self.leaves, key=lambda leaf: (leaf.length, leaf.value))
            else:
                victim = self.leaf_for_key(rng.randrange(1 << self.bits))
            self.split(victim)
        return sorted(self.leaves, key=lambda leaf: leaf.padded(self.bits))

    def partition_ratio(self) -> float:
        """Largest/smallest partition size over live leaves."""
        lengths = [leaf.length for leaf in self.leaves]
        return float(1 << (max(lengths) - min(lengths))) if lengths else 1.0

    def grow_aligned(self, domain_paths: List[Tuple[str, ...]], rng) -> List[PrefixId]:
        """Allocate one leaf per node with same-domain nodes in one subtree.

        Domains are recursively packed into binary subtrees (two halves with
        balanced node counts), then nodes within a domain split their subtree
        evenly.  Because a domain's nodes occupy a contiguous subtree, every
        hypercube edge for a bit at or below the domain's subtree root stays
        inside the domain — which is what gives Can-Can the intra-domain
        path locality of the other Canon constructions (see DESIGN.md §4).

        Returns the leaf of node i at position i (aligned with
        ``domain_paths``).
        """
        if self.leaves:
            raise RuntimeError("tree already has leaves")
        assignment: Dict[int, PrefixId] = {}
        items = list(enumerate(domain_paths))
        self._assign_aligned(PrefixId(0, 0), items, 0, assignment, rng)
        self.leaves = set(assignment.values())
        if len(self.leaves) != len(domain_paths):
            raise RuntimeError("aligned allocation produced duplicate leaves")
        return [assignment[i] for i in range(len(domain_paths))]

    def _assign_aligned(
        self,
        prefix: PrefixId,
        items: List[Tuple[int, Tuple[str, ...]]],
        depth: int,
        assignment: Dict[int, PrefixId],
        rng,
    ) -> None:
        if len(items) == 1:
            assignment[items[0][0]] = prefix
            return
        if prefix.length >= self.bits:
            raise RuntimeError("identifier space exhausted during alignment")
        groups: Dict[Optional[str], List[Tuple[int, Tuple[str, ...]]]] = {}
        for item in items:
            label = item[1][depth] if depth < len(item[1]) else None
            groups.setdefault(label, []).append(item)
        if len(groups) == 1:
            label = next(iter(groups))
            if label is not None:
                # Single sub-domain: descend without consuming a bit.
                self._assign_aligned(prefix, items, depth + 1, assignment, rng)
                return
            # All nodes at their leaf domain: split counts evenly.
            half = len(items) // 2
            self._assign_aligned(prefix.child(0), items[:half], depth, assignment, rng)
            self._assign_aligned(prefix.child(1), items[half:], depth, assignment, rng)
            return
        # Pack whole groups into two halves with balanced node counts.
        ordered = sorted(groups.values(), key=len, reverse=True)
        left: List[Tuple[int, Tuple[str, ...]]] = []
        right: List[Tuple[int, Tuple[str, ...]]] = []
        for group in ordered:
            (left if len(left) <= len(right) else right).extend(group)
        self._assign_aligned(prefix.child(0), left, depth, assignment, rng)
        self._assign_aligned(prefix.child(1), right, depth, assignment, rng)


def hamming_weight_limited(a: int, b: int) -> int:
    """Hamming distance between two equal-width integers."""
    return bin(a ^ b).count("1")


def are_adjacent(a: PrefixId, b: PrefixId) -> bool:
    """Hypercube adjacency between real nodes via their virtual nodes."""
    short = min(a.length, b.length)
    return hamming_weight_limited(a.value >> (a.length - short),
                                  b.value >> (b.length - short)) == 1


class CANNetwork(DHTNetwork):
    """Flat logarithmic-degree CAN over a prefix tree.

    Node identifiers registered in the hierarchy are the canonical *padded*
    prefix values (disjoint, hence unique).  ``prefixes`` maps each padded id
    back to its :class:`PrefixId`.
    """

    metric = "xor"
    family = "can"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        prefixes: Dict[int, PrefixId],
        use_numpy: bool = True,
    ) -> None:
        super().__init__(space, hierarchy)
        missing = set(self.node_ids) - set(prefixes)
        if missing:
            raise ValueError(f"no prefix registered for nodes {sorted(missing)[:5]}")
        self.prefixes = prefixes
        self.use_numpy = use_numpy

    def build(self) -> "CANNetwork":
        """Populate the link table per this construction's rule."""
        ids = self.node_ids
        if self._use_bulk():
            from ..perf.build import can_link_sets

            self.built_with = "numpy"
            lengths = [self.prefixes[node].length for node in ids]
            self._finalize_links(can_link_sets(ids, lengths, self.space.bits))
            return self
        self.built_with = "python"
        link_sets: Dict[int, Set[int]] = {node: set() for node in ids}
        # All-pairs adjacency; CAN instances in this reproduction are modest
        # (no paper figure depends on CAN scale) and this is the ground-truth
        # hypercube emulation the lowest-domain Can-Can rule is checked against.
        for i, a in enumerate(ids):
            pa = self.prefixes[a]
            for b in ids[i + 1 :]:
                pb = self.prefixes[b]
                if are_adjacent(pa, pb):
                    link_sets[a].add(b)
                    link_sets[b].add(a)
        self._finalize_links(link_sets)
        return self

    # -------------------------------------------------------------- routing

    def responsible_node(self, key: int, within=None) -> int:
        """The leaf whose prefix interval contains ``key``."""
        if within is not None:
            candidates = [n for n in within if self.prefixes[n].contains_key(key, self.space.bits)]
            if not candidates:
                raise KeyError(f"no node in subset owns key {key}")
            return candidates[0]
        for node in self.node_ids:
            if self.prefixes[node].contains_key(key, self.space.bits):
                return node
        raise KeyError(f"no node owns key {key}")

    def route_bitfix(self, src: int, key: int) -> Route:
        """Left-to-right bit fixing toward ``key`` (Section 3.4)."""
        bits = self.space.bits
        path = [src]
        cur = src
        for _ in range(MAX_HOPS):
            prefix = self.prefixes[cur]
            if prefix.contains_key(key, bits):
                return Route(path, True, key)
            nxt = self._bitfix_step(cur, key)
            if nxt is None:
                return Route(path, False, key)
            path.append(nxt)
            cur = nxt
        raise RuntimeError("bit-fixing exceeded the hop bound; broken network")

    def _effective_lcp(self, node: int, key: int) -> int:
        """Progress measure: common prefix of ``key`` with the node's *real* bits.

        Padding bits beyond a short prefix carry no routing information, so
        agreement is capped at the prefix length; a node whose effective LCP
        equals its prefix length owns the key.
        """
        prefix = self.prefixes[node]
        raw = _common_prefix_len(prefix.padded(self.space.bits), key, self.space.bits)
        return min(raw, prefix.length)

    def _bitfix_step(self, cur: int, key: int) -> Optional[int]:
        """Neighbor extending the common prefix with ``key``; must improve.

        Existence is guaranteed by tree fullness: if the current node first
        disagrees with the key at bit e, some adjacent node lies in the
        sibling subtree at depth e and agrees with the key through bit e.
        """
        cur_lcp = self._effective_lcp(cur, key)
        best, best_lcp = None, cur_lcp
        for nb in self.links[cur]:
            lcp = self._effective_lcp(nb, key)
            if lcp > best_lcp:
                best, best_lcp = nb, lcp
        return best


def _common_prefix_len(a: int, b: int, bits: int) -> int:
    """Length of the common binary prefix of two ``bits``-wide integers."""
    diff = a ^ b
    if diff == 0:
        return bits
    return bits - diff.bit_length()


def build_can(
    space: IdSpace,
    count: int,
    rng,
    policy: str = "random",
    domain_paths: Optional[List[Tuple[str, ...]]] = None,
    use_numpy: bool = True,
) -> CANNetwork:
    """Convenience constructor: grow a prefix tree and build the CAN over it.

    ``domain_paths``, if given, assigns the i-th allocated node to the i-th
    path (for hierarchical placements reused by Can-Can); otherwise all nodes
    are placed at the root domain.
    """
    tree = PrefixTree(space.bits)
    leaves = tree.grow(count, rng, policy)
    hierarchy = Hierarchy()
    prefixes: Dict[int, PrefixId] = {}
    for i, leaf in enumerate(leaves):
        padded = leaf.padded(space.bits)
        prefixes[padded] = leaf
        path = domain_paths[i] if domain_paths else ()
        hierarchy.place(padded, path)
    return CANNetwork(space, hierarchy, prefixes, use_numpy=use_numpy).build()
