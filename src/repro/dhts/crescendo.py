"""Crescendo — the Canonical (hierarchical) version of Chord (Section 2).

Construction.  Every node draws a random N-bit identifier.  The nodes of each
*leaf* domain form a standard Chord ring among themselves.  Moving bottom-up,
the ring of an internal domain is obtained by *merging* its children's rings:
each node ``m`` retains all its existing links and additionally links to a
node ``m'`` outside its own (child) ring if and only if

  (a) ``m'`` is the closest node at least distance ``2**k`` away for some
      ``0 <= k < N``, applied over the union of the sibling rings, and
  (b) ``m'`` is closer to ``m`` than any node in ``m``'s own ring.

Because condition (b) bounds new links by the clockwise distance to ``m``'s
successor in its own ring, the links added at a merge are exactly the union
fingers that land strictly inside that gap — nodes of ``m``'s own ring can
never satisfy it, so no own-ring test is needed.

Routing is plain greedy clockwise routing (Section 2.2): it is *naturally
hierarchical*, with two structural guarantees validated in the test suite:

- **Locality of intra-domain paths**: a route between two nodes never leaves
  their lowest common domain.
- **Convergence of inter-domain paths**: all routes from inside a domain D to
  a destination x outside D exit D through the closest predecessor of x
  within D.

Theorem 2: expected degree is at most ``log2(n-1) + min(l, log2 n)`` for an
l-level hierarchy (empirically it is *below* Chord's and decreases with l).
Theorem 5: expected routing hops are at most ``log2(n-1) + 1`` irrespective
of the hierarchy (empirically ~``0.5*log2 n + c``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.hierarchy import DomainPath, Hierarchy
from ..core.idspace import IdSpace, successor_index
from ..core.network import DHTNetwork


class CrescendoNetwork(DHTNetwork):
    """Static (oracle) construction of a Crescendo ring.

    ``use_numpy`` selects the vectorised bulk builder (preferred for the
    paper-scale 32K-65K node runs); the pure-Python path is the reference
    implementation and the two are cross-checked by property tests.
    """

    metric = "ring"
    family = "crescendo"

    def __init__(
        self, space: IdSpace, hierarchy: Hierarchy, use_numpy: bool = True
    ) -> None:
        super().__init__(space, hierarchy)
        self.use_numpy = use_numpy
        #: Per node: clockwise distance to its own-ring successor, updated as
        #: rings merge; exposed for analysis and invariant checks.
        self.gap: Dict[int, int] = {}
        #: Per node: successor at each of its levels, leaf domain first
        #: (the per-level leaf sets of Section 2.3, not counted as links).
        self.level_successors: Dict[int, List[int]] = {}

    # ---------------------------------------------------------------- build

    def build(self) -> "CrescendoNetwork":
        """Populate the link table per this construction's rule."""
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        self.gap = {node: self.space.size for node in self.node_ids}
        self.level_successors = {node: [] for node in self.node_ids}
        depth_of = {node: len(self.hierarchy.path_of(node)) for node in self.node_ids}
        self.built_with = "numpy" if self._use_bulk() else "python"

        domains = sorted(self.hierarchy.domains(), key=lambda d: -d.depth)
        for domain in domains:
            members = self.hierarchy.sorted_members(domain.path)
            if not members:
                continue
            leaf_nodes = [m for m in members if depth_of[m] == domain.depth]
            merge_nodes = [m for m in members if depth_of[m] > domain.depth]
            if domain.depth == 0:
                # Hook point: proximity-adapted variants replace the top-level
                # merge with group-based construction (Section 3.6).
                self._build_top_domain(members, leaf_nodes, merge_nodes, link_sets)
            elif self._bulk_domain(members):
                self._build_domain_numpy(members, leaf_nodes, merge_nodes, link_sets)
            else:
                self._build_domain_python(members, leaf_nodes, merge_nodes, link_sets)
            self._record_level(members)

        self._finalize_links(link_sets)
        return self

    def _bulk_domain(self, members: List[int]) -> bool:
        """Whether one domain's ring is large enough for the bulk path."""
        from ..perf.build import bulk_enabled

        return self.space.bits < 64 and bulk_enabled(self.use_numpy, len(members))

    def _build_top_domain(
        self,
        members: List[int],
        leaf_nodes: List[int],
        merge_nodes: List[int],
        link_sets: Dict[int, Set[int]],
    ) -> None:
        """Top-level (root) merge; the default is the ordinary Canon merge."""
        if self._bulk_domain(members):
            self._build_domain_numpy(members, leaf_nodes, merge_nodes, link_sets)
        else:
            self._build_domain_python(members, leaf_nodes, merge_nodes, link_sets)

    def _record_level(self, members: List[int]) -> None:
        """Record each member's successor in this ring (its new leaf set)."""
        count = len(members)
        for pos, node in enumerate(members):
            succ = members[(pos + 1) % count]
            self.level_successors[node].append(succ)
            self.gap[node] = (
                self.space.ring_distance(node, succ) if succ != node else self.space.size
            )

    def _build_domain_python(
        self,
        members: List[int],
        leaf_nodes: List[int],
        merge_nodes: List[int],
        link_sets: Dict[int, Set[int]],
    ) -> None:
        space = self.space
        for node in leaf_nodes:
            # First ring for this node: full Chord fingers within the domain.
            for k in range(space.bits):
                target = space.add(node, 1 << k)
                succ = members[successor_index(members, target)]
                if succ != node:
                    link_sets[node].add(succ)
        for node in merge_nodes:
            # Merge: union fingers strictly inside the node's own-ring gap.
            gap = self.gap[node]
            k = 0
            while (1 << k) < gap and k < space.bits:
                target = space.add(node, 1 << k)
                succ = members[successor_index(members, target)]
                if succ != node:
                    dist = space.ring_distance(node, succ)
                    if dist < gap:
                        link_sets[node].add(succ)
                k += 1

    def _build_domain_numpy(
        self,
        members: List[int],
        leaf_nodes: List[int],
        merge_nodes: List[int],
        link_sets: Dict[int, Set[int]],
    ) -> None:
        space = self.space
        arr = np.array(members, dtype=np.uint64)
        size = np.uint64(space.size)
        ks = np.uint64(1) << np.arange(space.bits, dtype=np.uint64)

        def fingers(nodes: List[int]) -> Tuple[np.ndarray, np.ndarray]:
            base = np.array(nodes, dtype=np.uint64)
            targets = (base[:, None] + ks[None, :]) % size
            idx = np.searchsorted(arr, targets)
            idx[idx == len(arr)] = 0
            succ = arr[idx]
            dist = (succ - base[:, None]) % size
            return succ, dist

        if leaf_nodes:
            succ, dist = fingers(leaf_nodes)
            for row, node in enumerate(leaf_nodes):
                link_sets[node].update(
                    int(s) for s, d in zip(succ[row], dist[row]) if d != 0
                )
        if merge_nodes:
            succ, dist = fingers(merge_nodes)
            gaps = np.array([self.gap[m] for m in merge_nodes], dtype=np.uint64)
            keep = (dist != 0) & (dist < gaps[:, None]) & (ks[None, :] < gaps[:, None])
            for row, node in enumerate(merge_nodes):
                link_sets[node].update(int(s) for s in succ[row][keep[row]])

    # -------------------------------------------------------------- queries

    def levels_of(self, node_id: int) -> int:
        """Number of rings the node belongs to (its leaf depth + 1)."""
        return len(self.hierarchy.path_of(node_id)) + 1

    def successor_at_level(self, node_id: int, depth: int) -> Optional[int]:
        """The node's successor in its depth-``depth`` ancestor ring.

        ``depth`` counts from the root (0 = global ring).  Returns ``None``
        when the node has no ring at that depth.
        """
        chain = self.level_successors.get(node_id)
        if chain is None:
            self.require_built()
            return None
        leaf_depth = len(self.hierarchy.path_of(node_id))
        # chain is recorded deepest-first: chain[0] is the leaf-domain ring.
        index = leaf_depth - depth
        if not 0 <= index < len(chain):
            return None
        return chain[index]

    def exit_node(self, domain: DomainPath, dest_key: int) -> int:
        """The common exit point for routes from ``domain`` to ``dest_key``.

        By the convergence property (Section 2.2) this is the closest
        predecessor of the destination within the domain — also the proxy
        node used for caching (Section 4.2).
        """
        members = self.hierarchy.sorted_members(domain)
        if not members:
            raise ValueError(f"domain {domain!r} has no members")
        return self.responsible_node(dest_key, within=members)
