"""Canon in G Major — hierarchical DHTs with the Canon construction.

A full reproduction of Ganesan, Gummadi & Garcia-Molina, *Canon in G Major:
Designing DHTs with Hierarchical Structure* (ICDCS 2004): the Canon merge
paradigm; Crescendo, Cacophony, ND-Crescendo, Kandy and Can-Can; their flat
baselines; group-based physical-network proximity adaptation; hierarchical
storage, access control and caching; partition balancing; a transit-stub
internet model; and a message-level simulator for dynamic maintenance.

Quickstart::

    import random
    from repro import IdSpace, build_uniform_hierarchy, CrescendoNetwork, route

    rng = random.Random(7)
    space = IdSpace(32)
    ids = space.random_ids(1000, rng)
    hierarchy = build_uniform_hierarchy(ids, fanout=10, levels=3, rng=rng)
    net = CrescendoNetwork(space, hierarchy).build()
    r = route(net, ids[0], ids[1])
    print(r.hops, r.success)
"""

from .core import (
    DEFAULT_BITS,
    ROOT,
    DHTNetwork,
    Domain,
    DomainPath,
    Hierarchy,
    IdSpace,
    Route,
    build_uniform_hierarchy,
    hierarchy_from_names,
    parse_name,
    route,
    route_ring,
    route_ring_lookahead,
    route_xor,
)
from .dhts import (
    CANNetwork,
    CacophonyNetwork,
    CanCanNetwork,
    ChordNetwork,
    CrescendoNetwork,
    KademliaNetwork,
    KandyNetwork,
    LanCrescendoNetwork,
    NDChordNetwork,
    NDCrescendoNetwork,
    SymphonyNetwork,
    build_can,
    build_cancan,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_BITS",
    "ROOT",
    "CANNetwork",
    "CacophonyNetwork",
    "CanCanNetwork",
    "ChordNetwork",
    "CrescendoNetwork",
    "DHTNetwork",
    "Domain",
    "DomainPath",
    "Hierarchy",
    "IdSpace",
    "KademliaNetwork",
    "KandyNetwork",
    "LanCrescendoNetwork",
    "NDChordNetwork",
    "NDCrescendoNetwork",
    "Route",
    "SymphonyNetwork",
    "build_can",
    "build_cancan",
    "build_uniform_hierarchy",
    "hierarchy_from_names",
    "parse_name",
    "route",
    "route_ring",
    "route_ring_lookahead",
    "route_xor",
]
