"""Core building blocks: ID spaces, the conceptual hierarchy, link tables,
and the greedy routing engines shared by every DHT construction."""

from .hierarchy import (
    ROOT,
    Domain,
    DomainPath,
    Hierarchy,
    build_uniform_hierarchy,
    format_name,
    hierarchy_from_names,
    lca,
    lca_depth,
    parse_name,
    zipf_weights,
)
from .idspace import DEFAULT_BITS, IdSpace
from .network import DHTNetwork, edges
from .routing import Route, route, route_ring, route_ring_lookahead, route_xor

__all__ = [
    "ROOT",
    "DEFAULT_BITS",
    "Domain",
    "DomainPath",
    "DHTNetwork",
    "Hierarchy",
    "IdSpace",
    "Route",
    "build_uniform_hierarchy",
    "edges",
    "format_name",
    "hierarchy_from_names",
    "lca",
    "lca_depth",
    "parse_name",
    "route",
    "route_ring",
    "route_ring_lookahead",
    "route_xor",
    "zipf_weights",
]
