"""Static network representation shared by every DHT construction.

A built DHT is represented as an explicit out-link table over node
identifiers.  Node identity *is* the DHT identifier (an integer in the ID
space); the conceptual hierarchy is carried alongside and maps each id to its
leaf domain.

The static ("oracle") constructions in :mod:`repro.dhts` fill these tables
directly; the message-level simulator in :mod:`repro.simulation` builds the
same tables through protocol messages and is cross-checked against the
oracle.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .hierarchy import Hierarchy, ROOT
from .idspace import IdSpace, predecessor_index, successor_index


class LinkTableError(AssertionError):
    """A malformed entry in a network's link table.

    Subclasses :class:`AssertionError` for backward compatibility with
    callers that treat :meth:`DHTNetwork.check_links_valid` as an
    assertion, but carries the offending coordinates so harnesses (and
    humans reading CI logs) see *which* entry broke instead of an opaque
    failure.
    """

    def __init__(self, node: int, link: Optional[int], reason: str) -> None:
        self.node = node
        self.link = link
        self.reason = reason
        where = f"node {node}" if link is None else f"node {node} -> {link}"
        super().__init__(f"{where}: {reason}")


class DHTNetwork:
    """Base class: an ID space, a hierarchy, and a per-node link table.

    Subclasses implement :meth:`build` to populate ``links`` according to
    their construction rule.  ``metric`` declares which greedy routing engine
    applies ("ring" for Chord-family networks, "xor" for Kademlia-family).
    """

    metric = "ring"
    #: Short family tag used by :mod:`repro.verify` to select the invariant
    #: checkers that apply to a built instance.  Subclasses override it.
    family = "network"

    def __init__(self, space: IdSpace, hierarchy: Hierarchy) -> None:
        self.space = space
        self.hierarchy = hierarchy
        ids = hierarchy.sorted_members(ROOT)
        if len(set(ids)) != len(ids):
            raise ValueError("node ids must be unique")
        for ident in ids:
            space.validate(ident)
        self.node_ids: List[int] = list(ids)
        self._id_set: Set[int] = set(ids)
        # Out-links only; the paper's degree figures count these.
        self.links: Dict[int, List[int]] = {i: [] for i in ids}
        self._built = False
        # Builder dispatch: subclasses that have a bulk (numpy) construction
        # consult _use_bulk() in build(); the scalar code stays the semantic
        # reference.  built_with records which path actually ran.
        self.use_numpy = True
        self.built_with: Optional[str] = None

    # ------------------------------------------------------------- building

    def build(self) -> "DHTNetwork":
        """Populate the link table.  Returns ``self`` for chaining."""
        raise NotImplementedError

    def _use_bulk(self) -> bool:
        """Whether this build should take the vectorized bulk path.

        Honours the per-network ``use_numpy`` flag, the process-wide build
        mode (:func:`repro.perf.build.set_build_mode`) and the small-network
        threshold; oversized id spaces (>63 bits) always run the reference.
        """
        from ..perf.build import bulk_enabled

        return self.space.bits < 64 and bulk_enabled(self.use_numpy, self.size)

    def _finalize_links(self, link_sets: Dict[int, Set[int]]) -> None:
        """Install link sets, deduplicated, self-links removed, sorted by id.

        Sorting by identifier lets the greedy routing engines take each step
        with a binary search instead of a scan.
        """
        for node, targets in link_sets.items():
            targets.discard(node)
            self.links[node] = sorted(targets)
        self._built = True

    def require_built(self) -> None:
        """Raise unless :meth:`build` has completed."""
        if not self._built:
            raise RuntimeError(
                f"{type(self).__name__} has not been built; call .build() first"
            )

    # ------------------------------------------------------------- topology

    @property
    def size(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._id_set

    def neighbors(self, node_id: int) -> List[int]:
        """Out-neighbors of a node, sorted by identifier."""
        return self.links[node_id]

    def degree(self, node_id: int) -> int:
        """Out-degree (the paper's "number of links"; in-links not counted)."""
        return len(self.links[node_id])

    def degrees(self) -> List[int]:
        """Out-degrees of all nodes, in node-id order."""
        return [len(self.links[i]) for i in self.node_ids]

    def average_degree(self) -> float:
        """Mean out-degree (the y-axis of the paper's Figure 3)."""
        return sum(self.degrees()) / max(1, self.size)

    def degree_distribution(self) -> Dict[int, float]:
        """PDF of node degree (Figure 4 of the paper)."""
        counts = Counter(self.degrees())
        total = float(self.size)
        return {deg: cnt / total for deg, cnt in sorted(counts.items())}

    def max_degree(self) -> int:
        """Largest out-degree (Theorem 3's w.h.p. subject)."""
        return max(self.degrees(), default=0)

    # ---------------------------------------------------------- ring lookups

    def successor(self, ident: int, within: Optional[Sequence[int]] = None) -> int:
        """First node id >= ``ident`` clockwise (optionally within a domain list)."""
        ids = self.node_ids if within is None else within
        return ids[successor_index(ids, ident)]

    def responsible_node(self, key: int, within: Optional[Sequence[int]] = None) -> int:
        """The node managing ``key``: last node id <= key, cyclically.

        Implements the paper's inverted responsibility rule (Section 4.1
        footnote): a node is responsible for keys in ``[own id, next id)``.
        """
        ids = self.node_ids if within is None else within
        return ids[predecessor_index(ids, key)]

    # ------------------------------------------------------------ invariants

    def iter_link_violations(self) -> Iterable[tuple]:
        """Yield ``(node, link, reason)`` for every malformed link entry.

        Checks that every target exists, no node links to itself, and each
        node's link list is strictly sorted (the binary-search routing step
        in :mod:`repro.core.routing` relies on sortedness, and duplicates
        inflate the paper's degree figures).
        """
        self.require_built()
        for node, targets in self.links.items():
            if node not in self._id_set:
                yield (node, None, "link table row for unknown node")
            for prev, target in zip(targets, targets[1:]):
                if target <= prev:
                    yield (
                        node,
                        target,
                        f"link list not strictly sorted ({prev} then {target})",
                    )
            for target in targets:
                if target == node:
                    yield (node, target, "links to itself")
                elif target not in self._id_set:
                    yield (node, target, "links to unknown node")

    def check_links_valid(self) -> None:
        """Raise :class:`LinkTableError` on the first malformed link entry.

        The error names the offending node and link and the reason, so a
        failure in a 10^5-node build pinpoints the broken table row.
        """
        for node, link, reason in self.iter_link_violations():
            raise LinkTableError(node, link, reason)


def edges(network: DHTNetwork) -> Iterable[tuple]:
    """All directed (src, dst) link pairs of a built network."""
    network.require_built()
    for node in network.node_ids:
        for target in network.links[node]:
            yield (node, target)
