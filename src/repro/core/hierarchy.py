"""The conceptual hierarchy of domains (paper, Section 2.1).

Canon requires all nodes to form a *conceptual hierarchy* reflecting their
real-world organisation (Figure 1 of the paper: Stanford > CS > {DB, DS, AI}).
Internal vertices of the hierarchy are *domains*; system nodes hang off leaf
domains.  No global knowledge of the hierarchy is needed by the protocols —
each node only knows its own position (its hierarchical name) and two nodes
can compute their lowest common ancestor from their names.

A domain is identified by its *path*, a tuple of labels from the root, e.g.
``("stanford", "cs", "db")``.  The root domain is the empty tuple.  Node
*placement* maps each node id to the path of its leaf domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

DomainPath = Tuple[str, ...]

ROOT: DomainPath = ()


def parse_name(name: str, sep: str = ".") -> DomainPath:
    """Parse a DNS-style hierarchical name into a domain path.

    ``"stanford.cs.db"`` -> ``("stanford", "cs", "db")``.  An empty string is
    the root domain.
    """
    if not name:
        return ROOT
    return tuple(name.split(sep))


def format_name(path: DomainPath, sep: str = ".") -> str:
    """Inverse of :func:`parse_name`."""
    return sep.join(path)


def lca(a: DomainPath, b: DomainPath) -> DomainPath:
    """Lowest common ancestor of two domain paths."""
    out: List[str] = []
    for la, lb in zip(a, b):
        if la != lb:
            break
        out.append(la)
    return tuple(out)


def lca_depth(a: DomainPath, b: DomainPath) -> int:
    """Depth (path length) of the lowest common ancestor."""
    depth = 0
    for la, lb in zip(a, b):
        if la != lb:
            break
        depth += 1
    return depth


def is_ancestor(ancestor: DomainPath, path: DomainPath) -> bool:
    """Whether ``ancestor`` is ``path`` or one of its ancestors."""
    return path[: len(ancestor)] == ancestor


@dataclass
class Domain:
    """A vertex in the domain tree."""

    path: DomainPath
    children: Dict[str, "Domain"] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.path[-1] if self.path else ""

    @property
    def depth(self) -> int:
        return len(self.path)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child(self, label: str) -> "Domain":
        """The child domain with the given label (KeyError if absent)."""
        return self.children[label]


class Hierarchy:
    """A mutable domain tree plus node placements.

    The hierarchy may evolve dynamically (new domains appear when the first
    node with a new name joins).  Queries used by the DHT constructions:

    - :meth:`members` / :meth:`sorted_members`: all node ids in a domain's
      subtree (the paper's "nodes in domain D").
    - :meth:`path_of`: a node's leaf domain path.
    - :meth:`ancestor_chain`: the domains a node belongs to, leaf to root.
    """

    def __init__(self) -> None:
        self.root = Domain(ROOT)
        self._placements: Dict[int, DomainPath] = {}
        self._members: Dict[DomainPath, List[int]] = {ROOT: []}
        self._sorted_cache: Dict[DomainPath, List[int]] = {}

    # ------------------------------------------------------------------ tree

    def add_domain(self, path: DomainPath) -> Domain:
        """Ensure the domain at ``path`` (and its ancestors) exists."""
        node = self.root
        for i, label in enumerate(path):
            if label not in node.children:
                node.children[label] = Domain(path[: i + 1])
                self._members.setdefault(path[: i + 1], [])
            node = node.children[label]
        return node

    def domain(self, path: DomainPath) -> Domain:
        """The :class:`Domain` at ``path`` (``KeyError`` if absent)."""
        node = self.root
        for label in path:
            node = node.children[label]
        return node

    def has_domain(self, path: DomainPath) -> bool:
        """Whether a domain exists at ``path``."""
        try:
            self.domain(path)
            return True
        except KeyError:
            return False

    def domains(self) -> Iterator[Domain]:
        """All domains, pre-order from the root."""
        stack = [self.root]
        while stack:
            dom = stack.pop()
            yield dom
            stack.extend(dom.children.values())

    def leaf_domains(self) -> List[Domain]:
        """All childless domains (where system nodes hang)."""
        return [d for d in self.domains() if d.is_leaf]

    @property
    def max_depth(self) -> int:
        """Maximum leaf depth — the paper's "number of levels" l."""
        return max((d.depth for d in self.domains()), default=0)

    # ------------------------------------------------------------- placement

    def place(self, node_id: int, path: DomainPath) -> None:
        """Place node ``node_id`` in the leaf domain ``path``."""
        if node_id in self._placements:
            raise ValueError(f"node {node_id} already placed")
        self.add_domain(path)
        self._placements[node_id] = path
        for depth in range(len(path) + 1):
            self._members[path[:depth]].append(node_id)
        self._sorted_cache.clear()

    def remove(self, node_id: int) -> None:
        """Remove a node from its placement (domains are retained)."""
        path = self._placements.pop(node_id)
        for depth in range(len(path) + 1):
            self._members[path[:depth]].remove(node_id)
        self._sorted_cache.clear()

    def path_of(self, node_id: int) -> DomainPath:
        """The leaf-domain path of a node."""
        return self._placements[node_id]

    def ancestor_chain(self, node_id: int) -> List[DomainPath]:
        """Domains containing the node, from its leaf domain up to the root."""
        path = self._placements[node_id]
        return [path[:depth] for depth in range(len(path), -1, -1)]

    def members(self, path: DomainPath = ROOT) -> List[int]:
        """Node ids in the subtree rooted at ``path`` (insertion order)."""
        return list(self._members.get(path, []))

    def sorted_members(self, path: DomainPath = ROOT) -> List[int]:
        """Node ids in the subtree at ``path``, sorted ascending (cached)."""
        cached = self._sorted_cache.get(path)
        if cached is None:
            cached = sorted(self._members.get(path, []))
            self._sorted_cache[path] = cached
        return cached

    def member_count(self, path: DomainPath = ROOT) -> int:
        """Number of nodes in the subtree rooted at ``path``."""
        return len(self._members.get(path, []))

    @property
    def node_ids(self) -> List[int]:
        return list(self._placements)

    def __len__(self) -> int:
        return len(self._placements)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._placements

    # --------------------------------------------------------------- queries

    def lca_of_nodes(self, a: int, b: int) -> DomainPath:
        """Lowest common ancestor domain of two nodes."""
        return lca(self._placements[a], self._placements[b])

    def common_domain_depth(self, a: int, b: int) -> int:
        """Depth of the lowest common domain of two nodes."""
        return lca_depth(self._placements[a], self._placements[b])

    def nodes_in_same_domain(self, node_id: int, depth: int) -> List[int]:
        """All nodes sharing ``node_id``'s depth-``depth`` ancestor domain."""
        path = self._placements[node_id]
        return self.members(path[: min(depth, len(path))])


# ------------------------------------------------------------- constructors


def uniform_tree_paths(fanout: int, levels: int) -> List[DomainPath]:
    """Leaf-domain paths of a complete ``fanout``-ary tree of depth ``levels``.

    ``levels=1`` yields ``fanout`` leaf domains under the root; the paper's
    Section 5.1 experiments use ``fanout=10`` and 1-5 levels (levels=1 being
    flat Chord: every node in one of the fanout leaf domains would still be
    hierarchical, so level 1 is modelled as a *single* leaf domain — see
    :func:`build_uniform_hierarchy`).
    """
    if levels < 1 or fanout < 1:
        raise ValueError("fanout and levels must be >= 1")
    paths: List[DomainPath] = [ROOT]
    for _ in range(levels):
        paths = [path + (str(i),) for path in paths for i in range(fanout)]
    return paths


def zipf_weights(count: int, exponent: float = 1.25) -> List[float]:
    """Normalised Zipf weights: the k-th largest branch gets weight 1/k^exponent."""
    raw = [1.0 / (k ** exponent) for k in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def _choose_weighted(weights: Sequence[float], rng) -> int:
    u = rng.random()
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if u < acc:
            return i
    return len(weights) - 1


def build_uniform_hierarchy(
    node_ids: Iterable[int],
    fanout: int,
    levels: int,
    rng,
    distribution: str = "zipf",
    zipf_exponent: float = 1.25,
) -> Hierarchy:
    """Build the Section 5.1 synthetic hierarchy and place every node.

    ``levels=1`` corresponds to flat Chord (all nodes in the root domain).
    For deeper hierarchies, each internal domain has ``fanout`` children and
    nodes descend independently: uniformly at random per level, or with the
    paper's Zipfian branch sizes (the k-th largest branch holds a fraction
    proportional to ``1/k**zipf_exponent`` of its parent's nodes).
    """
    if distribution not in ("uniform", "zipf"):
        raise ValueError(f"unknown distribution {distribution!r}")
    hierarchy = Hierarchy()
    depth = levels - 1  # levels counts the rings incl. the root ring
    if depth == 0:
        for node_id in node_ids:
            hierarchy.place(node_id, ROOT)
        return hierarchy
    weights = (
        zipf_weights(fanout, zipf_exponent)
        if distribution == "zipf"
        else [1.0 / fanout] * fanout
    )
    for node_id in node_ids:
        path: DomainPath = ROOT
        for _ in range(depth):
            path = path + (str(_choose_weighted(weights, rng)),)
        hierarchy.place(node_id, path)
    return hierarchy


def hierarchy_from_names(named_nodes: Mapping[int, str], sep: str = ".") -> Hierarchy:
    """Build a hierarchy from DNS-style names, e.g. ``{7: "stanford.cs.db"}``."""
    hierarchy = Hierarchy()
    for node_id, name in named_nodes.items():
        hierarchy.place(node_id, parse_name(name, sep))
    return hierarchy
