"""Identifier spaces and distance metrics.

Every DHT in this package lives in an N-bit identifier space.  Chord-family
networks (Chord, Crescendo, Symphony, Cacophony, nondeterministic Chord)
measure *clockwise ring distance*; Kademlia-family networks (Kademlia, Kandy)
and the hypercube networks (CAN, Can-Can) measure *XOR distance*.

The paper uses 32-bit identifiers for all experiments (Section 5.1); that is
the default here, but every construction is parameterised on the bit width.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Sequence

DEFAULT_BITS = 32


@dataclass(frozen=True)
class IdSpace:
    """An N-bit circular identifier space ``[0, 2**bits)``.

    Provides the two distance metrics used by the paper's DHT families and
    deterministic key hashing.  Instances are immutable and cheap; share one
    per network.
    """

    bits: int = DEFAULT_BITS

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")

    @property
    def size(self) -> int:
        """Number of identifiers in the space (``2**bits``)."""
        return 1 << self.bits

    def contains(self, ident: int) -> bool:
        """Whether ``ident`` is a valid identifier in this space."""
        return 0 <= ident < self.size

    def validate(self, ident: int) -> int:
        """Return ``ident`` unchanged, raising ``ValueError`` if out of range."""
        if not self.contains(ident):
            raise ValueError(f"identifier {ident!r} outside [0, 2**{self.bits})")
        return ident

    def ring_distance(self, src: int, dst: int) -> int:
        """Clockwise distance from ``src`` to ``dst`` on the ring.

        This is the (asymmetric) Chord metric: the number of steps clockwise
        from ``src``'s position to ``dst``'s.
        """
        return (dst - src) % self.size

    def xor_distance(self, a: int, b: int) -> int:
        """Kademlia's symmetric XOR metric."""
        return a ^ b

    def add(self, ident: int, delta: int) -> int:
        """``ident + delta`` wrapped around the ring."""
        return (ident + delta) % self.size

    def hash_key(self, key: object) -> int:
        """Deterministically hash an application key into the ID space.

        Uses SHA-1 (as Chord does) truncated to ``bits`` bits.  Accepts any
        object with a stable ``str`` representation; bytes are hashed as-is.
        """
        raw = key if isinstance(key, bytes) else str(key).encode("utf-8")
        digest = hashlib.sha1(raw).digest()
        return int.from_bytes(digest, "big") % self.size

    def random_id(self, rng) -> int:
        """Draw an identifier uniformly at random using ``rng``.

        ``rng`` may be a ``random.Random`` or ``numpy.random.Generator``; only
        a ``randrange``-like or ``integers``-like method is required.
        """
        if hasattr(rng, "randrange"):
            return rng.randrange(self.size)
        return int(rng.integers(self.size))

    def random_ids(self, count: int, rng) -> List[int]:
        """Draw ``count`` distinct identifiers uniformly at random."""
        if count > self.size:
            raise ValueError(f"cannot draw {count} distinct ids from 2**{self.bits}")
        seen = set()
        out: List[int] = []
        while len(out) < count:
            ident = self.random_id(rng)
            if ident not in seen:
                seen.add(ident)
                out.append(ident)
        return out

    def top_bit(self, value: int) -> int:
        """Index of the most significant set bit of ``value`` (-1 for zero)."""
        return value.bit_length() - 1

    def prefix(self, ident: int, length: int) -> int:
        """The top ``length`` bits of ``ident`` as an integer group ID."""
        if not 0 <= length <= self.bits:
            raise ValueError(f"prefix length {length} outside [0, {self.bits}]")
        return ident >> (self.bits - length)


def successor_index(sorted_ids: Sequence[int], target: int) -> int:
    """Index of the first id >= ``target`` in ``sorted_ids``, cyclically.

    ``sorted_ids`` must be sorted ascending.  Returns 0 when ``target`` is
    larger than every element (wrap-around).  This is the primitive behind
    "the closest node at least distance d away" in every ring construction.
    """
    lo, hi = 0, len(sorted_ids)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_ids[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo % len(sorted_ids)


def predecessor_index(sorted_ids: Sequence[int], target: int) -> int:
    """Index of the last id <= ``target`` in ``sorted_ids``, cyclically.

    This identifies the node *responsible* for a key under the paper's
    inverted responsibility rule (Section 4.1 footnote): a node manages keys
    in ``[own id, next id)``.
    """
    idx = successor_index(sorted_ids, target)
    if sorted_ids[idx] == target:
        return idx
    return (idx - 1) % len(sorted_ids)


def sorted_unique(ids: Iterable[int]) -> List[int]:
    """Sorted list of distinct ids (construction helper)."""
    return sorted(set(ids))
