"""Greedy routing engines.

All DHTs in the paper route greedily: Chord-family networks use greedy
*clockwise* (non-overshooting) routing on the ring metric; Kademlia-family
networks greedily shrink the XOR distance; Symphony additionally supports
greedy routing with a one-step *lookahead* (Section 3.1).

Routing operates on the static link tables of a built
:class:`~repro.core.network.DHTNetwork`.  Every engine returns a
:class:`Route` carrying the full node path so the analysis layer can compute
hops, latencies, path overlap and domain crossings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Set

from .idspace import predecessor_index, successor_index
from .network import DHTNetwork

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..obs.trace import Tracer
    from .hierarchy import Hierarchy

#: Safety valve: no route in a well-formed network approaches this length.
MAX_HOPS = 10_000


class LiveSet(frozenset):
    """A frozen alive-set that caches its sorted id array.

    The terminal checks below (`_is_responsible`, `_is_xor_closest`) need the
    live ids *sorted* to binary-search the responsible node.  A plain ``set``
    forces an O(n log n) sort per terminal check, which dominates the churn
    and failure studies; a :class:`LiveSet` sorts once, lazily, and every
    route under the same failure pattern reuses it.  It *is* a ``frozenset``,
    so membership tests and equality with plain sets are unchanged.
    """

    __slots__ = ("_sorted",)

    @property
    def sorted_ids(self) -> List[int]:
        """The live ids in ascending order (computed once, then cached)."""
        try:
            return self._sorted
        except AttributeError:
            object.__setattr__(self, "_sorted", sorted(self))
            return self._sorted


def _sorted_live(alive: Set[int]) -> Sequence[int]:
    """Sorted view of an alive set, cached when it is a :class:`LiveSet`."""
    if isinstance(alive, LiveSet):
        return alive.sorted_ids
    return sorted(alive)


@dataclass
class Route:
    """The outcome of one routing attempt.

    ``path`` includes the source as its first element and, on success, the
    terminal node as its last.  ``hops`` is the number of edges traversed.
    """

    path: List[int]
    success: bool
    dest_key: int

    @property
    def source(self) -> int:
        return self.path[0]

    @property
    def terminal(self) -> int:
        return self.path[-1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def latency(self, latency_fn: Callable[[int, int], float]) -> float:
        """Total latency under a pairwise latency function."""
        return sum(
            latency_fn(a, b) for a, b in zip(self.path, self.path[1:])
        )

    def edges(self) -> List[tuple]:
        """Consecutive (src, dst) hop pairs along the path."""
        return list(zip(self.path, self.path[1:]))

    def domain_crossings(self, hierarchy: "Hierarchy", level: int = 1) -> int:
        """Hops that cross a depth-``level`` domain boundary.

        A hop from ``a`` to ``b`` crosses at ``level`` when the two nodes'
        depth-``level`` ancestor domains differ — equivalently, when their
        lowest common ancestor lies *above* that level.  ``level=1`` counts
        crossings between top-level domains, the paper's fault-isolation and
        path-convergence quantity (Figures 7-8).
        """
        return sum(
            1
            for a, b in zip(self.path, self.path[1:])
            if hierarchy.path_of(a)[:level] != hierarchy.path_of(b)[:level]
        )


def _traced(route: Route, network: DHTNetwork, tracer: "Optional[Tracer]") -> Route:
    """Emit ``route`` to ``tracer`` (if any) and return it unchanged.

    Called once per finished route — never inside the hop loop — so routing
    with no tracer attached pays a single ``is None`` check per route.  The
    engines below inline this check at their terminal returns to avoid even
    the extra call; helpers outside this module use this function.
    """
    if tracer is not None:
        tracer.route(route, hierarchy=network.hierarchy)
    return route


def _best_ring_step(
    network: DHTNetwork,
    cur: int,
    dest: int,
    alive: Optional[Set[int]],
) -> Optional[int]:
    """Largest non-overshooting clockwise step from ``cur`` toward ``dest``.

    Returns the neighbor in the clockwise interval ``(cur, dest]`` closest to
    ``dest``, or ``None`` when no neighbor makes progress (``cur`` is then the
    terminal node for this key).
    """
    space = network.space
    remaining = space.ring_distance(cur, dest)
    if remaining == 0:
        return None
    neighbors = network.links[cur]
    if not neighbors:
        return None
    if alive is None:
        # Neighbors are sorted by id: the best step is the cyclic
        # predecessor-or-equal of dest, provided it lies in (cur, dest].
        cand = neighbors[predecessor_index(neighbors, dest)]
        dist = space.ring_distance(cur, cand)
        if 0 < dist <= remaining:
            return cand
        return None
    best = None
    best_dist = 0
    for cand in neighbors:
        if cand not in alive:
            continue
        dist = space.ring_distance(cur, cand)
        if 0 < dist <= remaining and dist > best_dist:
            best, best_dist = cand, dist
    return best


def route_ring(
    network: DHTNetwork,
    src: int,
    dest_key: int,
    alive: Optional[Set[int]] = None,
    tracer: "Optional[Tracer]" = None,
) -> Route:
    """Greedy clockwise routing (Chord / Crescendo / Symphony / Cacophony).

    Forwards to the neighbor closest to ``dest_key`` without overshooting it
    (Section 2.2).  Terminates at the node responsible for ``dest_key``; when
    ``dest_key`` is a node id, that is the node itself.  With an ``alive``
    filter, dead neighbors are skipped and the route fails if no live
    neighbor makes progress.  A ``tracer`` (see :mod:`repro.obs.trace`)
    records the finished route with per-hop hierarchy annotations; it never
    influences routing decisions.
    """
    path = [src]
    cur = src
    for _ in range(MAX_HOPS):
        nxt = _best_ring_step(network, cur, dest_key, alive)
        if nxt is None:
            # cur is the terminal node: responsible for the key (no neighbor
            # lies in (cur, key]) — or stuck because of failures.
            done = network.space.ring_distance(cur, dest_key) == 0 or _is_responsible(
                network, cur, dest_key, alive
            )
            result = Route(path, done, dest_key)
            if tracer is not None:
                tracer.route(result, hierarchy=network.hierarchy)
            return result
        path.append(nxt)
        cur = nxt
    raise RuntimeError(f"routing exceeded {MAX_HOPS} hops: likely a broken network")


def _is_responsible(
    network: DHTNetwork, node: int, key: int, alive: Optional[Set[int]]
) -> bool:
    """Whether ``node`` is responsible for ``key`` among live nodes."""
    if alive is None:
        return network.responsible_node(key) == node
    live_sorted = _sorted_live(alive)
    if not live_sorted:
        return False
    return live_sorted[predecessor_index(live_sorted, key)] == node


def route_xor(
    network: DHTNetwork,
    src: int,
    dest_key: int,
    alive: Optional[Set[int]] = None,
    tracer: "Optional[Tracer]" = None,
) -> Route:
    """Greedy XOR routing (Kademlia / Kandy / CAN bit-fixing equivalent).

    Each hop strictly decreases the XOR distance to ``dest_key``; terminates
    at a local minimum, which for a well-formed bucket construction is the
    globally XOR-closest node.  ``tracer`` records the finished route and
    never influences routing decisions.
    """
    space = network.space
    path = [src]
    cur = src
    cur_dist = space.xor_distance(cur, dest_key)
    for _ in range(MAX_HOPS):
        if cur_dist == 0:
            result = Route(path, True, dest_key)
            if tracer is not None:
                tracer.route(result, hierarchy=network.hierarchy)
            return result
        nxt = _best_xor_step(network, cur, dest_key, cur_dist, alive)
        if nxt is None:
            success = _is_xor_closest(network, cur, dest_key, alive)
            result = Route(path, success, dest_key)
            if tracer is not None:
                tracer.route(result, hierarchy=network.hierarchy)
            return result
        path.append(nxt)
        cur = nxt
        cur_dist = space.xor_distance(cur, dest_key)
    raise RuntimeError(f"routing exceeded {MAX_HOPS} hops: likely a broken network")


def _best_xor_step(
    network: DHTNetwork,
    cur: int,
    dest: int,
    cur_dist: int,
    alive: Optional[Set[int]],
) -> Optional[int]:
    """Neighbor of ``cur`` XOR-closest to ``dest``, if strictly closer."""
    neighbors = network.links[cur]
    if not neighbors:
        return None
    space = network.space
    if alive is None:
        # The XOR-nearest element of a sorted array is always adjacent to the
        # insertion point of the target (longest-common-prefix blocks are
        # contiguous in sorted order).
        pos = successor_index(neighbors, dest)
        best, best_dist = None, cur_dist
        for idx in (pos, (pos - 1) % len(neighbors)):
            cand = neighbors[idx]
            dist = space.xor_distance(cand, dest)
            if dist < best_dist:
                best, best_dist = cand, dist
        return best
    best, best_dist = None, cur_dist
    for cand in neighbors:
        if cand not in alive:
            continue
        dist = space.xor_distance(cand, dest)
        if dist < best_dist:
            best, best_dist = cand, dist
    return best


def _is_xor_closest(
    network: DHTNetwork, node: int, key: int, alive: Optional[Set[int]]
) -> bool:
    space = network.space
    ids = network.node_ids if alive is None else _sorted_live(alive)
    if not ids:
        return False
    pos = successor_index(ids, key)
    best = min(
        (space.xor_distance(ids[idx % len(ids)], key) for idx in (pos, pos - 1)),
        default=None,
    )
    # The global XOR-nearest node is adjacent to the insertion point too.
    return best is not None and space.xor_distance(node, key) == best


def route_ring_lookahead(
    network: DHTNetwork,
    src: int,
    dest_key: int,
    tracer: "Optional[Tracer]" = None,
) -> Route:
    """Greedy clockwise routing with one-step lookahead (Section 3.1).

    At each step the node examines its neighbors *and their neighbors*, and
    greedily picks the pair of steps that reduces the remaining clockwise
    distance the most (never overshooting); it then takes the first step of
    the best pair.  In Symphony this yields O(log n / log log n) hops — about
    40% fewer than plain greedy in practice.  ``tracer`` records the
    finished route and never influences routing decisions.
    """
    space = network.space
    path = [src]
    cur = src
    for _ in range(MAX_HOPS):
        remaining = space.ring_distance(cur, dest_key)
        if remaining == 0:
            result = Route(path, True, dest_key)
            if tracer is not None:
                tracer.route(result, hierarchy=network.hierarchy)
            return result
        best_first: Optional[int] = None
        best_covered = 0
        for nb in network.links[cur]:
            d1 = space.ring_distance(cur, nb)
            if not 0 < d1 <= remaining:
                continue
            if d1 > best_covered:
                best_first, best_covered = nb, d1
            # Second step taken greedily from nb's own table.
            nb2 = _best_ring_step(network, nb, dest_key, None)
            if nb2 is not None:
                d2 = d1 + space.ring_distance(nb, nb2)
                if d2 <= remaining and d2 > best_covered:
                    best_first, best_covered = nb, d2
        if best_first is None:
            done = _is_responsible(network, cur, dest_key, None)
            result = Route(path, done, dest_key)
            if tracer is not None:
                tracer.route(result, hierarchy=network.hierarchy)
            return result
        path.append(best_first)
        cur = best_first
    raise RuntimeError(f"routing exceeded {MAX_HOPS} hops: likely a broken network")


def route(network: DHTNetwork, src: int, dest_key: int, **kwargs) -> Route:
    """Route using the engine matching the network's declared metric."""
    if network.metric == "ring":
        return route_ring(network, src, dest_key, **kwargs)
    if network.metric == "xor":
        return route_xor(network, src, dest_key, **kwargs)
    raise ValueError(f"unknown metric {network.metric!r}")
