"""Physical-network proximity adaptation (Section 3.6): group-based
construction for Chord (Prox.) and Crescendo (Prox.)."""

from .sampling import best_of_sample, sampling_quality
from .groups import (
    DEFAULT_GROUP_TARGET,
    DEFAULT_SAMPLE,
    ProximityChordNetwork,
    ProximityCrescendoNetwork,
    group_prefix_bits,
    route_grouped,
)

__all__ = [
    "DEFAULT_GROUP_TARGET",
    "DEFAULT_SAMPLE",
    "ProximityChordNetwork",
    "ProximityCrescendoNetwork",
    "group_prefix_bits",
    "route_grouped",
    "best_of_sample",
    "sampling_quality",
]
