"""Random-sampling proximity selection (Section 3.6's prime insight).

"If a node randomly samples s other nodes in the system, and chooses the
'best' of these s to link to, the expected latency of the resulting link is
small. (Internet measurements show that s = 32 is sufficient.)"

:func:`best_of_sample` is the primitive (used by the group-based networks);
:func:`sampling_quality` measures how link latency decays with the sample
size on a given latency function — the ablation that justifies the paper's
s = 32 default.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Sequence

LatencyFn = Callable[[int, int], float]


def best_of_sample(
    src: int,
    candidates: Sequence[int],
    latency_fn: LatencyFn,
    rng,
    sample: int = 32,
) -> int:
    """The latency-best of up to ``sample`` randomly drawn candidates."""
    pool = [c for c in candidates if c != src]
    if not pool:
        raise ValueError("no candidates to sample from")
    if len(pool) > sample:
        pool = rng.sample(pool, sample)
    return min(pool, key=lambda c: latency_fn(src, c))


def sampling_quality(
    nodes: Sequence[int],
    latency_fn: LatencyFn,
    rng,
    sample_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    trials: int = 200,
) -> Dict[int, float]:
    """Mean chosen-link latency as a function of the sample size s.

    Returns ``{s: mean latency}``; the curve flattens by s ~ 32, which is
    what lets the group-based construction pick nearby members with a
    constant amount of probing.
    """
    out: Dict[int, float] = {}
    for sample in sample_sizes:
        chosen: List[float] = []
        for _ in range(trials):
            src = rng.choice(nodes)
            best = best_of_sample(src, nodes, latency_fn, rng, sample)
            chosen.append(latency_fn(src, best))
        out[sample] = statistics.mean(chosen)
    return out
