"""Group-based adaptation to physical-network proximity (Section 3.6).

Nodes are conceptually grouped by the top T bits of their identifier.  The
DHT's edge-creation rules are applied to *group IDs*: a node required to
connect to group x+2**k may connect to **any** node of that group — and picks
a physically nearby one (random sampling of s ~ 32 members and keeping the
best is sufficient per the Internet measurements the paper cites).  Nodes
within a group are densely connected (needed anyway for replication and
fault tolerance), so routing happens in two stages: between groups to reach
the destination's group, then one intra-group hop.

T is chosen so each group holds a small constant number of nodes regardless
of system size; every node can compute T independently from a population
estimate.

- :class:`ProximityChordNetwork` — *Chord (Prox.)*: Chord built on groups.
- :class:`ProximityCrescendoNetwork` — *Crescendo (Prox.)*: ordinary
  Crescendo rings below the root; group-based construction for the top-level
  merge only (the level that no longer reflects physical proximity).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set

from ..core.hierarchy import Hierarchy
from ..core.idspace import IdSpace, predecessor_index, successor_index
from ..core.network import DHTNetwork
from ..core.routing import MAX_HOPS, Route, _traced
from ..dhts.crescendo import CrescendoNetwork

LatencyFn = Callable[[int, int], float]

#: Paper-cited sample size sufficient to find a nearby node.
DEFAULT_SAMPLE = 32
#: Target expected nodes per group.
DEFAULT_GROUP_TARGET = 8


def group_prefix_bits(population: int, group_target: int = DEFAULT_GROUP_TARGET) -> int:
    """Prefix length T giving ~``group_target`` expected nodes per group."""
    if population <= group_target:
        return 0
    return max(0, round(math.log2(population / group_target)))


class _GroupIndex:
    """Shared group bookkeeping for the proximity-adapted networks."""

    def __init__(self, space: IdSpace, node_ids: List[int], prefix_bits: int) -> None:
        self.space = space
        self.prefix_bits = prefix_bits
        self.members: Dict[int, List[int]] = {}
        for node in node_ids:  # node_ids sorted => member lists sorted
            self.members.setdefault(space.prefix(node, prefix_bits), []).append(node)
        self.group_ids: List[int] = sorted(self.members)

    def group_of(self, node: int) -> int:
        return self.space.prefix(node, self.prefix_bits)

    def existing_group_at_or_after(self, group: int) -> int:
        """The group itself, or the next (cyclic) non-empty group."""
        return self.group_ids[successor_index(self.group_ids, group)]

    def group_distance(self, a: int, b: int) -> int:
        return (b - a) % (1 << self.prefix_bits) if self.prefix_bits else 0

    def best_member(
        self,
        src: int,
        group: int,
        latency_fn: LatencyFn,
        rng,
        sample: int = DEFAULT_SAMPLE,
    ) -> Optional[int]:
        """The latency-best of up to ``sample`` random members of a group."""
        candidates = [m for m in self.members[group] if m != src]
        if not candidates:
            return None
        if len(candidates) > sample:
            candidates = rng.sample(candidates, sample)
        return min(candidates, key=lambda c: latency_fn(src, c))


class ProximityChordNetwork(DHTNetwork):
    """Chord (Prox.): the Chord rule applied to T-bit prefix groups.

    Each node connects to one (physically nearby) member of group
    ``g + 2**k`` for every ``0 <= k < T`` (next non-empty group when that one
    is vacant), plus densely to its own group.  Route with
    :func:`route_grouped`.
    """

    metric = "ring"
    family = "chord-prox"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        latency_fn: LatencyFn,
        rng,
        group_target: int = DEFAULT_GROUP_TARGET,
        sample: int = DEFAULT_SAMPLE,
    ) -> None:
        super().__init__(space, hierarchy)
        self.latency_fn = latency_fn
        self.rng = rng
        self.sample = sample
        self.prefix_bits = group_prefix_bits(self.size, group_target)
        self.groups = _GroupIndex(space, self.node_ids, self.prefix_bits)

    def build(self) -> "ProximityChordNetwork":
        """Populate the link table per this construction's rule."""
        link_sets: Dict[int, Set[int]] = {node: set() for node in self.node_ids}
        groups = self.groups
        for node in self.node_ids:
            own = groups.group_of(node)
            # Dense intra-group structure (one-hop final stage).
            link_sets[node].update(m for m in groups.members[own] if m != node)
            for k in range(self.prefix_bits):
                target = groups.existing_group_at_or_after(
                    (own + (1 << k)) % (1 << self.prefix_bits)
                )
                if target == own:
                    continue
                best = groups.best_member(
                    node, target, self.latency_fn, self.rng, self.sample
                )
                if best is not None:
                    link_sets[node].add(best)
        self._finalize_links(link_sets)
        return self


class ProximityCrescendoNetwork(CrescendoNetwork):
    """Crescendo (Prox.): group-based construction at the top level only.

    Rings below the root are built exactly as in Crescendo (they already
    reflect physical proximity); the top-level merge creates group links —
    for each octave k below the node's own-ring gap *measured in group
    space*, a link to a physically nearby member of group ``g + 2**k`` —
    plus a dense intra-group graph.
    """

    family = "crescendo-prox"

    def __init__(
        self,
        space: IdSpace,
        hierarchy: Hierarchy,
        latency_fn: LatencyFn,
        rng,
        group_target: int = DEFAULT_GROUP_TARGET,
        sample: int = DEFAULT_SAMPLE,
        use_numpy: bool = True,
    ) -> None:
        super().__init__(space, hierarchy, use_numpy=use_numpy)
        self.latency_fn = latency_fn
        self.rng = rng
        self.sample = sample
        self.prefix_bits = group_prefix_bits(self.size, group_target)
        self.groups = _GroupIndex(space, self.node_ids, self.prefix_bits)

    def _build_top_domain(self, members, leaf_nodes, merge_nodes, link_sets) -> None:
        groups = self.groups
        group_count = 1 << self.prefix_bits
        for node in members:
            own = groups.group_of(node)
            link_sets[node].update(m for m in groups.members[own] if m != node)
            # Condition (b) in group space: only link to groups closer than
            # the group of the node's own-ring successor.
            gap = self.gap[node]
            if gap >= self.space.size:
                group_gap = group_count
            else:
                successor = self.space.add(node, gap)
                group_gap = groups.group_distance(own, groups.group_of(successor))
                if group_gap == 0:
                    continue  # own-ring successor in the same group: covered
            k = 0
            while (1 << k) < max(group_gap, 1) and k < self.prefix_bits:
                target = groups.existing_group_at_or_after(
                    (own + (1 << k)) % group_count
                )
                distance = groups.group_distance(own, target)
                if 0 < distance < group_gap:
                    best = groups.best_member(
                        node, target, self.latency_fn, self.rng, self.sample
                    )
                    if best is not None:
                        link_sets[node].add(best)
                k += 1


def route_grouped(network, src: int, dest_key: int, tracer=None) -> Route:
    """Two-stage routing for proximity-adapted networks (Section 3.6).

    Stage 1: greedy clockwise toward the *end* of the destination group's
    identifier range — a hop may land anywhere inside an intermediate group
    without being counted as overshoot.  Stage 2: once inside the responsible
    node's group, the dense intra-group structure finishes in one hop.
    Works for both ``ProximityChordNetwork`` and
    ``ProximityCrescendoNetwork`` (whose lower-level Crescendo links simply
    participate in stage 1).  A ``tracer`` (:mod:`repro.obs.trace`) records
    the finished route; it never influences routing decisions.
    """
    space = network.space
    groups = network.groups
    responsible = network.responsible_node(dest_key)
    dest_group = groups.group_of(responsible)
    suffix_bits = space.bits - network.prefix_bits
    upper = ((dest_group + 1) << suffix_bits) - 1  # last id of the dest group

    path = [src]
    cur = src
    for _ in range(MAX_HOPS):
        if cur == responsible:
            return _traced(Route(path, True, dest_key), network, tracer)
        if groups.group_of(cur) == dest_group:
            # Final stage: dense intra-group links reach the responsible node.
            if responsible in network.links[cur] or responsible == cur:
                path.append(responsible)
                return _traced(Route(path, True, dest_key), network, tracer)
            return _traced(Route(path, False, dest_key), network, tracer)
        remaining = space.ring_distance(cur, upper)
        best, best_dist = None, 0
        neighbors = network.links[cur]
        cand = neighbors[predecessor_index(neighbors, upper)] if neighbors else None
        if cand is not None:
            dist = space.ring_distance(cur, cand)
            if 0 < dist <= remaining:
                best, best_dist = cand, dist
        if best is None:
            return _traced(Route(path, False, dest_key), network, tracer)
        path.append(best)
        cur = best
    raise RuntimeError(f"routing exceeded {MAX_HOPS} hops: likely a broken network")
