"""The paper's analytic bounds (Theorems 1-6) as executable functions.

The paper proves expectation bounds for Chord (its Theorems 1 and 4 are, to
the authors' knowledge, the first such proofs) and for Crescendo.  Encoding
them as functions lets tests and the ``theorems`` experiment compare every
bound against measurements on the same axis the paper uses.
"""

from __future__ import annotations

import math


def chord_degree_bound(n: int) -> float:
    """Theorem 1: E[degree] <= log2(n-1) + 1 in an n-node Chord ring."""
    if n < 2:
        return 0.0
    return math.log2(n - 1) + 1


def crescendo_degree_bound(n: int, levels: int) -> float:
    """Theorem 2: E[degree] <= log2(n-1) + min(l, log2 n) for l levels."""
    if n < 2:
        return 0.0
    return math.log2(n - 1) + min(levels, math.log2(n))


def chord_hops_bound(n: int) -> float:
    """Theorem 4: E[hops] <= 0.5*log2(n-1) + 0.5 between random nodes."""
    if n < 2:
        return 0.0
    return 0.5 * math.log2(n - 1) + 0.5


def crescendo_hops_bound(n: int) -> float:
    """Theorem 5: E[hops] <= log2(n-1) + 1 irrespective of the hierarchy."""
    if n < 2:
        return 0.0
    return math.log2(n - 1) + 1


def whp_degree_envelope(n: int, constant: float = 4.0) -> float:
    """Theorem 3's O(log n) w.h.p. degree ceiling with an explicit constant.

    The paper leaves the constant implicit; empirically ``4*log2(n)`` holds
    across every configuration in the test suite.
    """
    return constant * math.log2(max(2, n))


def whp_hops_envelope(n: int, constant: float = 3.0) -> float:
    """Theorem 6's O(log n) w.h.p. routing-hops ceiling (explicit constant)."""
    return constant * math.log2(max(2, n))


def expected_intra_hops(c1: int, c2: int) -> float:
    """Theorem 5's proof device: intra-domain hops across two domains.

    Routing over domains with c1 then c2 nodes uses at most
    ``0.5*log2(c1 + c2)`` intra-domain hops in those two domains combined.
    """
    if c1 + c2 < 2:
        return 0.0
    return 0.5 * math.log2(c1 + c2)
