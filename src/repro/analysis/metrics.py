"""Measurement helpers: degree, hops, latency, stretch.

These are the quantities on the axes of the paper's Figures 3-7.  All
sampling helpers take an explicit ``rng`` and a ``router`` callable so the
same harness measures every network family (greedy ring, lookahead, XOR,
grouped-proximity routing).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.network import DHTNetwork
from ..core.routing import Route, route_ring
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.profile import PROFILER
from ..workloads.queries import random_pair

Router = Callable[[DHTNetwork, int, int], Route]
LatencyFn = Callable[[int, int], float]


@dataclass
class DegreeStats:
    mean: float
    maximum: int
    minimum: int
    pdf: Dict[int, float]

    @classmethod
    def of(cls, network: DHTNetwork) -> "DegreeStats":
        degrees = network.degrees()
        return cls(
            mean=statistics.mean(degrees),
            maximum=max(degrees),
            minimum=min(degrees),
            pdf=network.degree_distribution(),
        )


@dataclass
class RoutingStats:
    samples: int
    delivered: int
    mean_hops: float
    mean_latency: Optional[float] = None

    @property
    def success_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0


def sample_routing(
    network: DHTNetwork,
    rng,
    samples: int = 500,
    router: Router = route_ring,
    latency_fn: Optional[LatencyFn] = None,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> RoutingStats:
    """Route random (or given) node pairs and aggregate hops/latency.

    When an observability tracer or metrics registry is active
    (:mod:`repro.obs`), every sampled route is additionally recorded: the
    tracer gets one hop-annotated route record per attempt, and the
    registry accumulates ``route.hops``/``route.latency``/``route.crossings``
    histograms (crossings = top-level domain boundaries crossed, via
    :meth:`~repro.core.routing.Route.domain_crossings`) plus
    ``route.samples``/``route.delivered``/``messages.lookup`` counters (each
    routing hop is one lookup message in a deployed DHT).  Neither changes
    any routing decision.  Wall-clock time spent here accrues to the
    ``route`` phase of :data:`repro.obs.profile.PROFILER`.
    """
    tracer = obs_trace.active_tracer()
    registry = obs_metrics.active_registry()
    hops: List[int] = []
    latencies: List[float] = []
    crossings: List[int] = []
    delivered = 0
    pair_iter = (
        pairs
        if pairs is not None
        else [random_pair(network.node_ids, rng) for _ in range(samples)]
    )
    total = 0
    with PROFILER.phase("route"):
        for src, dst in pair_iter:
            total += 1
            result = router(network, src, dst)
            if tracer is not None:
                tracer.route(result, hierarchy=network.hierarchy)
            if not (result.success and result.terminal == dst):
                continue
            delivered += 1
            hops.append(result.hops)
            if registry is not None:
                crossings.append(result.domain_crossings(network.hierarchy))
            if latency_fn is not None:
                latencies.append(result.latency(latency_fn))
    if registry is not None:
        registry.counter("route.samples").inc(total)
        registry.counter("route.delivered").inc(delivered)
        registry.counter("messages.lookup").inc(sum(hops))
        hop_hist = registry.histogram("route.hops")
        for h in hops:
            hop_hist.observe(h)
        crossing_hist = registry.histogram("route.crossings")
        for c in crossings:
            crossing_hist.observe(c)
        if latencies:
            lat_hist = registry.histogram("route.latency")
            for lat in latencies:
                lat_hist.observe(lat)
    return RoutingStats(
        samples=total,
        delivered=delivered,
        mean_hops=statistics.mean(hops) if hops else 0.0,
        mean_latency=statistics.mean(latencies) if latencies else None,
    )


def stretch(
    network: DHTNetwork,
    rng,
    latency_fn: LatencyFn,
    direct_latency: float,
    samples: int = 500,
    router: Router = route_ring,
) -> Tuple[float, float]:
    """(stretch, mean overlay latency) relative to mean direct latency.

    Stretch 1 means overlay routing is as fast as routing directly between
    the two hosts on the modelled internet (Figure 6).
    """
    stats = sample_routing(
        network, rng, samples=samples, router=router, latency_fn=latency_fn
    )
    if stats.mean_latency is None or direct_latency <= 0:
        raise ValueError("latency sampling failed")
    return stats.mean_latency / direct_latency, stats.mean_latency
