"""Measurement helpers: degree, hops, latency, stretch.

These are the quantities on the axes of the paper's Figures 3-7.  All
sampling helpers take an explicit ``rng`` and a ``router`` callable so the
same harness measures every network family (greedy ring, lookahead, XOR,
grouped-proximity routing).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hierarchy import format_name, lca
from ..core.network import DHTNetwork
from ..core.routing import Route, route_ring, route_xor
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.profile import PROFILER
from ..perf.kernels import CompiledNetwork, compile_network
from ..perf.latency import LatencyTable
from ..workloads.queries import random_pair

Router = Callable[[DHTNetwork, int, int], Route]
LatencyFn = Callable[[int, int], float]


def _latency_table(latency_fn: Optional[LatencyFn]) -> Optional[LatencyTable]:
    """The vectorized table behind ``latency_fn``, when one exists.

    Recognizes a :class:`LatencyTable` passed directly, and the common case
    of a bound ``node_latency`` method of a
    :class:`~repro.topology.transit_stub.TransitStubTopology` (or anything
    else exposing ``latency_table()``) — the scalar per-hop oracle then has
    an exact vectorized twin the batch kernels can accumulate with.
    """
    if latency_fn is None:
        return None
    if isinstance(latency_fn, LatencyTable):
        return latency_fn
    owner = getattr(latency_fn, "__self__", None)
    if (
        owner is not None
        and getattr(latency_fn, "__name__", "") == "node_latency"
        and hasattr(owner, "latency_table")
    ):
        try:
            return owner.latency_table()
        except (KeyError, ValueError):
            return None
    return None


@dataclass
class DegreeStats:
    mean: float
    maximum: int
    minimum: int
    pdf: Dict[int, float]

    @classmethod
    def of(cls, network: DHTNetwork) -> "DegreeStats":
        degrees = network.degrees()
        if len(degrees) > 64:
            import numpy as np

            arr = np.asarray(degrees, dtype=np.int64)
            values, counts = np.unique(arr, return_counts=True)
            n = arr.size
            return cls(
                # Integer-sum division matches statistics.mean exactly.
                mean=float(int(arr.sum())) / n,
                maximum=int(values[-1]),
                minimum=int(values[0]),
                pdf={int(v): int(c) / n for v, c in zip(values, counts)},
            )
        return cls(
            mean=statistics.mean(degrees),
            maximum=max(degrees),
            minimum=min(degrees),
            pdf=network.degree_distribution(),
        )


@dataclass
class RoutingStats:
    samples: int
    delivered: int
    mean_hops: float
    mean_latency: Optional[float] = None

    @property
    def success_rate(self) -> float:
        return self.delivered / self.samples if self.samples else 0.0


def _workload(
    network: DHTNetwork,
    rng,
    samples: int,
    pairs: Optional[Sequence[Tuple[int, int]]],
) -> Sequence[Tuple[int, int]]:
    """The (src, key) workload to route: given pairs as-is, else generated.

    Provided pair sequences are used without copying (no throwaway list);
    generated pairs are materialized once and threaded through whichever
    engine routes them, so scalar and batch sample identical workloads.
    """
    if pairs is None:
        return [random_pair(network.node_ids, rng) for _ in range(samples)]
    if isinstance(pairs, Sequence):
        return pairs
    return list(pairs)


def _batch_compiled(
    network: DHTNetwork, router: Router, engine: str
) -> Optional[CompiledNetwork]:
    """The compiled network to use, or ``None`` for the scalar engine.

    The batch kernels replicate exactly ``route_ring`` on ring-metric
    networks and ``route_xor`` on XOR-metric ones; any other router (or a
    mismatched metric) runs scalar.  ``engine="auto"`` also degrades to
    scalar when compilation is impossible (e.g. the id space is too wide
    for augmented keys); ``engine="batch"`` raises instead.
    """
    if engine == "scalar":
        return None
    eligible = (router is route_ring and network.metric == "ring") or (
        router is route_xor and network.metric == "xor"
    )
    if engine == "batch":
        if not eligible:
            raise ValueError(
                "engine='batch' needs route_ring on a ring-metric network "
                "or route_xor on an xor-metric network"
            )
        return compile_network(network)
    if engine != "auto":
        raise ValueError(f"unknown engine {engine!r}; use auto, batch or scalar")
    if not eligible:
        return None
    try:
        return compile_network(network)
    except (ValueError, RuntimeError):
        return None


def sample_routing(
    network: DHTNetwork,
    rng,
    samples: int = 500,
    router: Router = route_ring,
    latency_fn: Optional[LatencyFn] = None,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    engine: str = "auto",
    slo_label: Optional[str] = None,
) -> RoutingStats:
    """Route random (or given) node pairs and aggregate hops/latency.

    ``engine`` selects the routing implementation: ``"auto"`` (default)
    uses the vectorized batch kernels of :mod:`repro.perf.kernels` whenever
    the router is the plain greedy engine matching the network's metric
    (they are hop-for-hop identical, so results do not change), and the
    per-route scalar engine otherwise; ``"batch"`` insists on the kernels;
    ``"scalar"`` opts out.

    Latency: when ``latency_fn`` is the transit-stub topology's
    ``node_latency`` (or a :class:`~repro.perf.latency.LatencyTable`), the
    batch engine accumulates per-hop latency *inside* the routing kernels
    with vectorized router-matrix gathers — no Python call per hop, no
    path materialization just for latency — and the totals are bit-for-bit
    what the scalar fold produces.  Any other callable falls back to the
    per-hop scalar fold over materialized paths.

    When an observability tracer or metrics registry is active
    (:mod:`repro.obs`), every sampled route is additionally recorded: the
    tracer gets one hop-annotated route record per attempt (with a
    ``latency_ms`` attr when latency is measured), and the registry
    accumulates ``route.hops``/``route.latency``/``route.crossings``
    histograms (crossings = top-level domain boundaries crossed, via
    :meth:`~repro.core.routing.Route.domain_crossings`) plus
    ``route.samples``/``route.delivered``/``messages.lookup`` counters (each
    routing hop is one lookup message in a deployed DHT).  With an
    ``slo_label``, delivered-lookup latencies are additionally recorded as
    the ``slo.*`` instruments :class:`repro.obs.slo.SLOReport` consumes:
    ``slo.lookup_ms.<label>`` (plus per-level ``.L<k>`` splits by the
    source/target lowest-common-domain depth), matching ``slo.direct_ms``
    histograms for the stretch denominator, offered/delivered counters,
    and per-top-level-domain traffic counters.  Neither changes any
    routing decision.  Wall-clock time spent here accrues to the ``route``
    phase of :data:`repro.obs.profile.PROFILER`.
    """
    tracer = obs_trace.active_tracer()
    registry = obs_metrics.active_registry()
    workload = _workload(network, rng, samples, pairs)
    compiled = _batch_compiled(network, router, engine)
    table = _latency_table(latency_fn)
    track_slo = registry is not None and slo_label is not None
    hops: List[int] = []
    latencies: List[float] = []
    crossings: List[int] = []
    delivered_pairs: List[Tuple[int, int]] = []
    delivered = 0
    total = len(workload)
    with PROFILER.phase("route"):
        if compiled is not None:
            # Full paths are only materialized when something consumes
            # them; a latency table needs none (the kernels accumulate).
            need_paths = (
                tracer is not None
                or registry is not None
                or (latency_fn is not None and table is None)
            )
            batch = compiled.route(
                [p[0] for p in workload],
                [p[1] for p in workload],
                paths=need_paths,
                latency=table,
            )
            ok = batch.success & (batch.terminals == batch.dest_keys)
            if not need_paths:
                delivered = int(ok.sum())
                hops = batch.hops[ok].tolist()
                if table is not None:
                    latencies = batch.latency_ms[ok].tolist()
                    if track_slo:
                        delivered_pairs = [
                            workload[i] for i in range(total) if ok[i]
                        ]
            else:
                for i, result in enumerate(batch.routes()):
                    lat = (
                        float(batch.latency_ms[i])
                        if table is not None
                        else (
                            result.latency(latency_fn)
                            if latency_fn is not None
                            else None
                        )
                    )
                    if tracer is not None:
                        extra = {} if lat is None else {"latency_ms": lat}
                        tracer.route(result, hierarchy=network.hierarchy, **extra)
                    if not ok[i]:
                        continue
                    delivered += 1
                    hops.append(result.hops)
                    if registry is not None:
                        crossings.append(result.domain_crossings(network.hierarchy))
                    if lat is not None:
                        latencies.append(lat)
                    if track_slo:
                        delivered_pairs.append(workload[i])
        else:
            for src, dst in workload:
                result = router(network, src, dst)
                lat = (
                    result.latency(latency_fn) if latency_fn is not None else None
                )
                if tracer is not None:
                    extra = {} if lat is None else {"latency_ms": lat}
                    tracer.route(result, hierarchy=network.hierarchy, **extra)
                if not (result.success and result.terminal == dst):
                    continue
                delivered += 1
                hops.append(result.hops)
                if registry is not None:
                    crossings.append(result.domain_crossings(network.hierarchy))
                if lat is not None:
                    latencies.append(lat)
                if track_slo:
                    delivered_pairs.append((src, dst))
    if registry is not None:
        registry.counter("route.samples").inc(total)
        registry.counter("route.delivered").inc(delivered)
        registry.counter("messages.lookup").inc(sum(hops))
        registry.histogram("route.hops").observe_many(hops)
        registry.histogram("route.crossings").observe_many(crossings)
        if latencies:
            registry.histogram("route.latency").observe_many(latencies)
        if track_slo:
            _record_slo(
                registry,
                slo_label,
                network,
                total,
                delivered_pairs,
                latencies,
                latency_fn,
                table,
            )
    return RoutingStats(
        samples=total,
        delivered=delivered,
        mean_hops=statistics.mean(hops) if hops else 0.0,
        mean_latency=statistics.mean(latencies) if latencies else None,
    )


def sample_routing_compiled(
    compiled: CompiledNetwork,
    rng,
    samples: int = 500,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    latency: Optional[LatencyTable] = None,
    top_domain=None,
) -> RoutingStats:
    """:func:`sample_routing` for a bare :class:`CompiledNetwork`.

    This is the measurement path for networks that exist only as arrays —
    a shared-memory arena attachment in a grid worker, or a streaming
    build — where no :class:`~repro.core.network.DHTNetwork` (and no
    :class:`~repro.core.hierarchy.Hierarchy`) exists to hand to
    :func:`sample_routing`.  The workload draw (``random_pair`` over the
    compiled id array), the batch routing call and the registry recording
    replicate the batch branch of :func:`sample_routing` exactly, so a
    grid point measured here is bit-identical — result *and* metrics — to
    the object path on the same network and RNG state.

    ``top_domain`` supplies per-position top-level-domain codes
    (:func:`repro.perf.arena.top_domain_codes`); with them the
    ``route.crossings`` histogram is recorded exactly as
    :meth:`~repro.core.routing.Route.domain_crossings` at level 1 would.
    Tracers are not supported (arena grids fall back to the object path
    when one is active).
    """
    import numpy as np

    registry = obs_metrics.active_registry()
    if pairs is None:
        workload: Sequence[Tuple[int, int]] = [
            random_pair(compiled.ids, rng) for _ in range(samples)
        ]
    else:
        workload = pairs if isinstance(pairs, Sequence) else list(pairs)
    track_crossings = registry is not None and top_domain is not None
    hops: List[int] = []
    latencies: List[float] = []
    crossings: List[int] = []
    delivered = 0
    total = len(workload)
    with PROFILER.phase("route"):
        batch = compiled.route(
            [p[0] for p in workload],
            [p[1] for p in workload],
            paths=track_crossings,
            latency=latency,
        )
        ok = batch.success & (batch.terminals == batch.dest_keys)
        delivered = int(ok.sum())
        hops = batch.hops[ok].tolist()
        if latency is not None:
            latencies = batch.latency_ms[ok].tolist()
        if track_crossings:
            for i in np.flatnonzero(ok).tolist():
                path = np.asarray(batch.paths[i], dtype=np.uint64)
                codes = top_domain[compiled._positions(path)]
                crossings.append(int(np.count_nonzero(codes[1:] != codes[:-1])))
    if registry is not None:
        registry.counter("route.samples").inc(total)
        registry.counter("route.delivered").inc(delivered)
        registry.counter("messages.lookup").inc(sum(hops))
        registry.histogram("route.hops").observe_many(hops)
        registry.histogram("route.crossings").observe_many(crossings)
        if latencies:
            registry.histogram("route.latency").observe_many(latencies)
    return RoutingStats(
        samples=total,
        delivered=delivered,
        mean_hops=statistics.mean(hops) if hops else 0.0,
        mean_latency=statistics.mean(latencies) if latencies else None,
    )


def _record_slo(
    registry: "obs_metrics.MetricsRegistry",
    label: str,
    network: DHTNetwork,
    offered: int,
    delivered_pairs: Sequence[Tuple[int, int]],
    latencies: Sequence[float],
    latency_fn: Optional[LatencyFn],
    table: Optional[LatencyTable],
) -> None:
    """Record the ``slo.*`` instruments for one measured family.

    ``delivered_pairs`` and ``latencies`` are aligned (delivered lookups
    only).  Levels are the depth of the source/target lowest common
    domain; the per-domain counters attribute each delivered lookup to its
    top-level LCA domain (``root`` for cross-domain traffic).
    """
    registry.counter(f"slo.samples.{label}").inc(offered)
    registry.counter(f"slo.delivered.{label}").inc(len(delivered_pairs))
    if not delivered_pairs or not latencies:
        return
    registry.histogram(f"slo.lookup_ms.{label}").observe_many(latencies)
    if table is not None:
        import numpy as np

        directs = table.hop_ms(
            np.asarray([p[0] for p in delivered_pairs], dtype=np.uint64),
            np.asarray([p[1] for p in delivered_pairs], dtype=np.uint64),
        ).tolist()
    elif latency_fn is not None:
        directs = [latency_fn(src, dst) for src, dst in delivered_pairs]
    else:
        directs = []
    if directs:
        registry.histogram(f"slo.direct_ms.{label}").observe_many(directs)
    hierarchy = network.hierarchy
    by_level: Dict[int, List[float]] = {}
    direct_by_level: Dict[int, List[float]] = {}
    domain_counts: Dict[str, int] = {}
    for i, (src, dst) in enumerate(delivered_pairs):
        common = lca(hierarchy.path_of(src), hierarchy.path_of(dst))
        level = len(common)
        by_level.setdefault(level, []).append(latencies[i])
        if directs:
            direct_by_level.setdefault(level, []).append(directs[i])
        top = format_name(common[:1]) if common else "root"
        domain_counts[top] = domain_counts.get(top, 0) + 1
    for level, values in sorted(by_level.items()):
        registry.histogram(f"slo.lookup_ms.{label}.L{level}").observe_many(values)
    for level, values in sorted(direct_by_level.items()):
        registry.histogram(f"slo.direct_ms.{label}.L{level}").observe_many(values)
    for domain, count in sorted(domain_counts.items()):
        registry.counter(f"slo.domain.{label}.{domain}").inc(count)


def stretch(
    network: DHTNetwork,
    rng,
    latency_fn: LatencyFn,
    direct_latency: float,
    samples: int = 500,
    router: Router = route_ring,
    engine: str = "auto",
    slo_label: Optional[str] = None,
) -> Tuple[float, float]:
    """(stretch, mean overlay latency) relative to mean direct latency.

    Stretch 1 means overlay routing is as fast as routing directly between
    the two hosts on the modelled internet (Figure 6).  ``slo_label``
    passes through to :func:`sample_routing`'s SLO recording.
    """
    stats = sample_routing(
        network,
        rng,
        samples=samples,
        router=router,
        latency_fn=latency_fn,
        engine=engine,
        slo_label=slo_label,
    )
    if stats.mean_latency is None or direct_latency <= 0:
        raise ValueError("latency sampling failed")
    return stats.mean_latency / direct_latency, stats.mean_latency
