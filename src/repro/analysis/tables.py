"""Plain-text result tables in the style of the paper's figures.

Every experiment module renders its output through :class:`Table`, so the
CLI, the benchmark harness and EXPERIMENTS.md all show the same rows the
paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """A fixed-width text table with a title and typed cells."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; floats are formatted to two decimals."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format(cell) for cell in cells])

    def render(self) -> str:
        """Fixed-width text rendering with title and header rule."""
        widths = [
            max(len(col), *(len(row[i]) for row in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated export (header row first; commas in cells quoted)."""

        def quote(cell: str) -> str:
            return f'"{cell}"' if ("," in cell or '"' in cell) else cell

        lines = [",".join(quote(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(quote(c) for c in row))
        return "\n".join(lines)

    def column(self, name: str) -> List[str]:
        """All formatted cells of the named column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
