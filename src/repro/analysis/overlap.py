"""Path-overlap metrics for the caching experiment (Figure 8).

A node r in domain D queries key k along path P; a second node r' drawn from
the same domain issues the same query along path P'.  Convergence of
inter-domain paths makes the shared portion of the two paths a common
*suffix* (both pass through D's proxy node for k and coincide afterwards).

- hop overlap fraction   = |shared suffix edges| / |P' edges|
- latency overlap fraction = latency(shared suffix) / latency(P')

These approximate the bandwidth and latency savings of caching the first
answer on its path.
"""

from __future__ import annotations

import statistics
from typing import Callable, List, Optional, Sequence, Tuple

LatencyFn = Callable[[int, int], float]


def common_suffix_edges(
    path_a: Sequence[int], path_b: Sequence[int]
) -> List[Tuple[int, int]]:
    """Edges of the longest common suffix of two node paths."""
    edges_a = list(zip(path_a, path_a[1:]))
    edges_b = list(zip(path_b, path_b[1:]))
    shared: List[Tuple[int, int]] = []
    for ea, eb in zip(reversed(edges_a), reversed(edges_b)):
        if ea != eb:
            break
        shared.append(ea)
    shared.reverse()
    return shared


def overlap_fractions(
    path_ref: Sequence[int],
    path_second: Sequence[int],
    latency_fn: Optional[LatencyFn] = None,
) -> Tuple[float, Optional[float]]:
    """(hop overlap fraction, latency overlap fraction) of the second path."""
    second_edges = list(zip(path_second, path_second[1:]))
    if not second_edges:
        return 1.0, 1.0 if latency_fn else None
    shared = common_suffix_edges(path_ref, path_second)
    hop_fraction = len(shared) / len(second_edges)
    if latency_fn is None:
        return hop_fraction, None
    total = sum(latency_fn(a, b) for a, b in second_edges)
    shared_latency = sum(latency_fn(a, b) for a, b in shared)
    latency_fraction = shared_latency / total if total > 0 else 1.0
    return hop_fraction, latency_fraction


def mean_overlap(
    pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
    latency_fn: Optional[LatencyFn] = None,
) -> Tuple[float, Optional[float]]:
    """Average (hop, latency) overlap fractions over (P, P') path pairs."""
    hop_fracs: List[float] = []
    lat_fracs: List[float] = []
    for ref, second in pairs:
        hop_frac, lat_frac = overlap_fractions(ref, second, latency_fn)
        hop_fracs.append(hop_frac)
        if lat_frac is not None:
            lat_fracs.append(lat_frac)
    return (
        statistics.mean(hop_fracs) if hop_fracs else 0.0,
        statistics.mean(lat_fracs) if lat_fracs else None,
    )
