"""Measurement and reporting: degree/hop/latency statistics, stretch, path
overlap fractions, and paper-style result tables."""

from .metrics import DegreeStats, RoutingStats, sample_routing, stretch
from .theory import (
    chord_degree_bound,
    chord_hops_bound,
    crescendo_degree_bound,
    crescendo_hops_bound,
    whp_degree_envelope,
    whp_hops_envelope,
)
from .overlap import common_suffix_edges, mean_overlap, overlap_fractions
from .tables import Table

__all__ = [
    "DegreeStats",
    "RoutingStats",
    "Table",
    "common_suffix_edges",
    "mean_overlap",
    "overlap_fractions",
    "sample_routing",
    "stretch",
    "chord_degree_bound",
    "chord_hops_bound",
    "crescendo_degree_bound",
    "crescendo_hops_bound",
    "whp_degree_envelope",
    "whp_hops_envelope",
]
